// Command leastcli learns a Bayesian-network structure from CSV or
// JSONL sample files and writes the discovered edges.
//
// Input is one file or a comma-separated shard list forming one
// logical dataset: CSV has one column per variable and one row per
// observation (optional header row names the variables); files ending
// in .jsonl/.ndjson hold one JSON array of numbers per line. Ingest
// streams: the rows are folded into sufficient statistics in one
// bounded-memory pass (never materialized), so the dense methods learn
// from datasets far larger than RAM-resident n×d. Output is either an
// edge list (from,to,weight) or Graphviz DOT. The -method flag selects
// the learner: least (dense, default), least-sp (the O(nnz) sparse
// mode for large d — this one loads the rows) or notears (the O(d³)
// baseline — small d only).
//
// Batch mode learns a whole fleet from one JSONL manifest — one task
// per line naming local files ("in": [...]) or inline data plus an
// optional per-task "spec" — over a bounded local worker pool with the
// same fair scheduling, deduplication and partial-failure semantics as
// the leastd /v2/batches surface (DESIGN.md §7). The per-task verdict
// table is written to stdout as CSV; learned networks go to -outdir as
// bnet JSON, one file per task label. Learn configuration lives per
// task in the manifest, so the single-mode flags (-lambda, -method,
// -eps, -seed, -sparse, -header, -center, -format) are rejected
// alongside -batch rather than silently ignored.
//
// Usage:
//
//	leastcli -in data.csv -header -tau 0.3 -format dot > graph.dot
//	leastcli -in part1.csv,part2.csv -header -lambda 0.05 -workers 4
//	leastcli -in data.jsonl -method notears -seed 7
//	leastcli -batch manifest.jsonl -jobs 4 -outdir results/
package main

import (
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/bnet"
	"repro/internal/serve"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run drives one leastcli invocation; split from main so the smoke
// tests can exercise the flag paths in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("leastcli", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "input sample file(s): CSV or JSONL, comma-separated shards")
	batch := fs.String("batch", "", "fleet manifest (JSONL, one task per line); mutually exclusive with -in")
	jobs := fs.Int("jobs", 0, "batch mode: concurrent learns (0 = half the cores, min 1)")
	outdir := fs.String("outdir", "", "batch mode: write per-task networks here as bnet JSON")
	header := fs.Bool("header", false, "first CSV row is a header with variable names")
	tau := fs.Float64("tau", 0.3, "edge threshold |w| > tau")
	lambda := fs.Float64("lambda", 0.1, "L1 regularization λ")
	eps := fs.Float64("eps", 1e-4, "acyclicity tolerance ε")
	methodName := fs.String("method", "", "learning method: least (default), least-sp or notears")
	sparseMode := fs.Bool("sparse", false, "use the LEAST-SP sparse learner (alias for -method least-sp)")
	format := fs.String("format", "csv", "output format: csv, json or dot")
	seed := fs.Int64("seed", 1, "random seed")
	center := fs.Bool("center", true, "subtract column means before learning")
	workers := fs.Int("workers", 0, "parallel workers for ingest and the execution backend (0 = all cores, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	switch {
	case *in == "" && *batch == "":
		fmt.Fprintln(stderr, "leastcli: one of -in or -batch is required")
		fs.Usage()
		return 2
	case *in != "" && *batch != "":
		fmt.Fprintln(stderr, "leastcli: -in and -batch are mutually exclusive")
		return 2
	case *batch != "":
		// Learn configuration lives per task in the manifest; silently
		// ignoring an explicit single-mode flag would learn plausible
		// networks with the wrong knobs.
		var conflicts []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "header", "lambda", "eps", "method", "sparse", "format", "seed", "center":
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			fmt.Fprintf(stderr, "leastcli: %s cannot apply in -batch mode; set them per task in the manifest\n",
				strings.Join(conflicts, ", "))
			return 2
		}
		return runBatch(*batch, *outdir, *jobs, *workers, *tau, stdout, stderr)
	}
	// The symmetric guard: the batch-only flags mean nothing in
	// single-file mode and must not be silently dropped.
	var batchOnly []string
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "outdir", "jobs":
			batchOnly = append(batchOnly, "-"+f.Name)
		}
	})
	if len(batchOnly) > 0 {
		fmt.Fprintf(stderr, "leastcli: %s only applies with -batch\n", strings.Join(batchOnly, ", "))
		return 2
	}
	method, err := least.ParseMethod(*methodName)
	if err != nil {
		fmt.Fprintln(stderr, "leastcli:", err)
		return 2
	}
	if *sparseMode {
		if *methodName != "" && method != least.MethodLEASTSP {
			fmt.Fprintf(stderr, "leastcli: -sparse conflicts with -method %s\n", method)
			return 2
		}
		method = least.MethodLEASTSP
	}

	// Ingest: one streaming pass over the shards into sufficient
	// statistics (dense methods never see the rows; least-sp re-reads
	// them when the learner starts). Timed separately from the learn so
	// the two scaling axes — n for ingest, d for optimization — stay
	// visible.
	ingestStart := time.Now()
	ds, err := least.OpenShards(strings.Split(*in, ","), least.DatasetOptions{
		Header:  *header,
		Workers: *workers,
	})
	if err != nil {
		fmt.Fprintln(stderr, "leastcli:", err)
		return 1
	}
	ingest := time.Since(ingestStart)
	n, d := ds.Dims()
	names := ds.Names()
	if names == nil {
		names = make([]string, d)
		for j := range names {
			names[j] = fmt.Sprintf("X%d", j)
		}
	}
	fmt.Fprintf(stderr, "ingested %d rows x %d variables in %v (fingerprint %.12s)\n",
		n, d, ingest.Round(time.Millisecond), ds.Fingerprint())
	if *center {
		ds = least.Centered(ds)
	}

	opts := []least.Option{
		least.WithMethod(method),
		least.WithLambda(*lambda),
		least.WithEpsilon(*eps),
		least.WithSeed(*seed),
		least.WithParallelism(*workers),
	}
	if method == least.MethodLEAST && d <= 600 {
		// The paper's §V-A fairness termination: affordable at CLI
		// scales, and it stops as soon as the exact h(W) is met.
		opts = append(opts, least.WithExactTermination(true))
	}
	spec, err := least.New(opts...)
	if err != nil {
		fmt.Fprintln(stderr, "leastcli:", err)
		return 2
	}
	learnStart := time.Now()
	res, err := spec.LearnDataset(context.Background(), ds)
	if err != nil {
		fmt.Fprintln(stderr, "leastcli:", err)
		return 1
	}
	learn := time.Since(learnStart)
	var net *bnet.Network
	if res.Weights != nil {
		net = bnet.FromDense(res.Weights, *tau, names)
	} else {
		net = bnet.FromCSR(res.SparseWeights, *tau, names)
	}
	switch *format {
	case "dot":
		fmt.Fprint(stdout, net.DOT())
	case "json":
		if err := net.WriteJSON(stdout); err != nil {
			fmt.Fprintln(stderr, "leastcli:", err)
			return 1
		}
	default:
		fmt.Fprintln(stdout, "from,to,weight")
		for _, e := range net.TopEdges(net.NumEdges()) {
			fmt.Fprintf(stdout, "%s,%s,%.6f\n", net.Name(e.From), net.Name(e.To), e.Weight)
		}
	}
	fmt.Fprintf(stderr, "learned %d edges over %d variables (δ=%.3g, converged=%v; ingest %v, learn %v)\n",
		net.NumEdges(), d, res.Delta, res.Converged,
		ingest.Round(time.Millisecond), learn.Round(time.Millisecond))
	return 0
}

// runBatch drives an offline fleet: it reads the JSONL manifest,
// opens every task's local data, and submits the lot as one batch to
// an in-process serving manager — the same admission, fair-scheduling,
// dedup and partial-failure machinery behind leastd's /v2/batches,
// minus the HTTP. Broken tasks become rows in the verdict table (code
// "validation"), never a refused manifest. Exit status is 0 only when
// every task learned.
func runBatch(path, outdir string, jobs, workers int, tau float64, stdout, stderr io.Writer) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(stderr, "leastcli:", err)
		return 1
	}
	tasks, err := least.ReadManifest(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(stderr, "leastcli:", err)
		return 1
	}
	if outdir != "" {
		if err := os.MkdirAll(outdir, 0o755); err != nil {
			fmt.Fprintln(stderr, "leastcli:", err)
			return 1
		}
	}

	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0) / 2
		if jobs < 1 {
			jobs = 1
		}
	}

	// Resolve every data source up front (ingest streams shard files
	// into sufficient statistics; inline tasks materialize), over a
	// bounded worker pool: a big file-backed manifest would otherwise
	// serialize its whole ingest phase on one goroutine before the
	// learn pool sees the first task.
	specs := make([]serve.BatchTaskSpec, len(tasks))
	resolvers := min(jobs, len(tasks))
	// Each resolver's streaming ingest is itself parallel; divide the
	// machine between them the same way the learn pool divides it
	// between slots, instead of resolvers × all-cores oversubscription.
	ingestWorkers := serve.CapParallelism(workers, runtime.GOMAXPROCS(0), resolvers)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < resolvers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				t := tasks[i]
				label := t.ID
				if label == "" {
					label = fmt.Sprintf("task%05d", i)
				}
				ts := serve.BatchTaskSpec{Label: label, Center: t.Center, Spec: t.Spec}
				if t.DatasetRef != "" {
					ts.Err = errors.New("dataset_ref tasks need a leastd daemon; offline manifests use in/csv/samples")
				} else if ds, err := t.Data(least.DatasetOptions{Workers: ingestWorkers}); err != nil {
					ts.Err = err
				} else {
					ts.Dataset = ds
				}
				specs[i] = ts
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	m := serve.NewManager(serve.Config{
		MaxConcurrent: jobs,
		MaxHistory:    len(specs) + 64, // every job must survive until its graph is written
		BatchBacklog:  len(specs) + 64,
		CacheSize:     len(specs) + 64,
	})
	start := time.Now()
	b, err := m.Batches().Submit(specs)
	if err != nil {
		fmt.Fprintln(stderr, "leastcli:", err)
		return 1
	}
	fmt.Fprintf(stderr, "fleet %s: %d tasks over %d workers\n", b.ID(), len(specs), jobs)

	// Ride the batch to completion; progress lines are coalesced (the
	// Watch sequence skips to the latest snapshot) and rate-limited.
	seen := -1
	var st serve.BatchStatus
	var lastLine time.Time
	for {
		var terminal bool
		st, seen, terminal = b.Watch(context.Background(), seen)
		if terminal {
			break
		}
		if time.Since(lastLine) >= time.Second {
			fmt.Fprintf(stderr, "fleet %s: %d/%d done (%d running, %d queued, %d failed)\n",
				b.ID(), st.Done, st.Total, st.Running, st.Queued, st.Failed)
			lastLine = time.Now()
		}
	}
	elapsed := time.Since(start)

	// The verdict table, paged like the HTTP surface would. A real CSV
	// writer, because labels and error strings may contain commas or
	// quotes.
	table := csv.NewWriter(stdout)
	_ = table.Write([]string{"label", "state", "job", "cached", "deduped", "code", "error"})
	bad := 0
	stems := map[string]bool{}
	const page = 512
	for off := 0; ; off += page {
		rows, total := b.Tasks(off, page, "")
		for _, ts := range rows {
			_ = table.Write([]string{
				ts.Label, string(ts.State), ts.Job,
				strconv.FormatBool(ts.Cached), strconv.FormatBool(ts.Deduped),
				string(ts.Code), ts.Error,
			})
			if ts.State != serve.Done {
				bad++
				continue
			}
			if outdir != "" {
				// Duplicate labels (or distinct labels that sanitize to
				// the same stem) must not silently overwrite each
				// other's networks; the task index disambiguates.
				stem := sanitizeLabel(ts.Label)
				if stems[stem] {
					stem = fmt.Sprintf("%s-%d", stem, ts.Index)
				}
				for stems[stem] {
					stem += "x"
				}
				stems[stem] = true
				if err := writeTaskGraph(m, outdir, ts, tau, stem); err != nil {
					fmt.Fprintf(stderr, "leastcli: %s: %v\n", ts.Label, err)
					bad++
				}
			}
		}
		if len(rows) == 0 || off+len(rows) >= total {
			break
		}
	}
	table.Flush()

	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	m.Shutdown(sctx)
	cancel()
	fmt.Fprintf(stderr, "fleet done: %d/%d learned (%d cached, %d deduped), %d failed, %d cancelled in %v (%.1f networks/s)\n",
		st.Done, st.Total, st.Cached, st.Deduped, st.Failed, st.Cancelled,
		elapsed.Round(time.Millisecond), float64(st.Done)/elapsed.Seconds())
	if bad > 0 {
		return 1
	}
	return 0
}

// writeTaskGraph thresholds one finished task's weights and writes the
// bnet JSON next to its fleet siblings, under the (already
// deduplicated) file stem.
func writeTaskGraph(m *serve.Manager, outdir string, ts serve.TaskStatus, tau float64, stem string) error {
	j, err := m.Get(ts.Job)
	if err != nil {
		return err
	}
	res, names, err := j.Result()
	if err != nil {
		return err
	}
	var net *bnet.Network
	if res.Weights != nil {
		net = bnet.FromDense(res.Weights, tau, names)
	} else {
		net = bnet.FromCSR(res.SparseWeights, tau, names)
	}
	out, err := os.Create(filepath.Join(outdir, stem+".json"))
	if err != nil {
		return err
	}
	if err := net.WriteJSON(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// sanitizeLabel maps a task label onto a safe file stem.
func sanitizeLabel(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '-'
	}, s)
}
