package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeChainCSV writes a tiny 3-variable linear-SEM sample
// (A → B → C) with deterministic pseudo-noise, returning the path.
func writeChainCSV(t *testing.T, header bool) string {
	t.Helper()
	var sb strings.Builder
	if header {
		sb.WriteString("A,B,C\n")
	}
	state := uint64(42)
	noise := func() float64 {
		// xorshift64 mapped to roughly N(0, 0.1) via sum of uniforms.
		var s float64
		for k := 0; k < 4; k++ {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			s += float64(state%1000)/1000.0 - 0.5
		}
		return s * 0.1
	}
	for i := 0; i < 150; i++ {
		a := noise() * 10
		b := 1.5*a + noise()
		c := -1.2*b + noise()
		fmt.Fprintf(&sb, "%.6f,%.6f,%.6f\n", a, b, c)
	}
	path := filepath.Join(t.TempDir(), "chain.csv")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture runs the CLI in-process and returns (exit, stdout, stderr).
func capture(args ...string) (int, string, string) {
	var out, errb strings.Builder
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunCSVOutput(t *testing.T) {
	in := writeChainCSV(t, true)
	code, out, errb := capture("-in", in, "-header", "-tau", "0.3")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "from,to,weight" {
		t.Fatalf("missing CSV header, got %q", lines[0])
	}
	if len(lines) < 2 {
		t.Fatalf("no edges learned:\n%s\n%s", out, errb)
	}
	found := false
	for _, l := range lines[1:] {
		parts := strings.Split(l, ",")
		if len(parts) != 3 {
			t.Fatalf("unparseable edge line %q", l)
		}
		if parts[0] == "A" && parts[1] == "B" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected planted edge A→B in output:\n%s", out)
	}
	if !strings.Contains(errb, "learned") {
		t.Errorf("missing summary on stderr: %q", errb)
	}
}

func TestRunDOTAndJSONFormats(t *testing.T) {
	in := writeChainCSV(t, false)
	code, out, errb := capture("-in", in, "-format", "dot")
	if code != 0 {
		t.Fatalf("dot: exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "digraph") {
		t.Errorf("dot output missing digraph:\n%s", out)
	}
	code, out, errb = capture("-in", in, "-format", "json")
	if code != 0 {
		t.Fatalf("json: exit %d, stderr: %s", code, errb)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("json output does not parse: %v\n%s", err, out)
	}
}

func TestRunSparseModeAndWorkers(t *testing.T) {
	in := writeChainCSV(t, true)
	code, _, errb := capture("-in", in, "-header", "-sparse", "-workers", "2")
	if code != 0 {
		t.Fatalf("sparse: exit %d, stderr: %s", code, errb)
	}
	code, _, errb = capture("-in", in, "-header", "-workers", "1")
	if code != 0 {
		t.Fatalf("workers=1: exit %d, stderr: %s", code, errb)
	}
}

func TestRunErrorPaths(t *testing.T) {
	if code, _, _ := capture(); code != 2 {
		t.Errorf("missing -in: exit %d, want 2", code)
	}
	if code, _, _ := capture("-no-such-flag"); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code, _, _ := capture("-in", "/nonexistent/file.csv"); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	empty := filepath.Join(t.TempDir(), "empty.csv")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := capture("-in", empty); code != 1 {
		t.Errorf("empty file: exit %d, want 1", code)
	}
}

func TestRunMethodFlag(t *testing.T) {
	in := writeChainCSV(t, true)
	// Every registered method learns the chain through the same flag.
	for _, method := range []string{"least", "least-sp", "notears"} {
		code, out, errb := capture("-in", in, "-header", "-method", method)
		if code != 0 {
			t.Fatalf("-method %s: exit %d, stderr: %s", method, code, errb)
		}
		if !strings.Contains(out, "from,to,weight") {
			t.Fatalf("-method %s: no edge list:\n%s", method, out)
		}
	}
	// -sparse stays as an alias; combining it with a different method
	// is a usage error, as is an unknown method.
	if code, _, errb := capture("-in", in, "-header", "-sparse", "-method", "least-sp"); code != 0 {
		t.Fatalf("-sparse with matching -method: exit %d, stderr: %s", code, errb)
	}
	if code, _, _ := capture("-in", in, "-header", "-sparse", "-method", "notears"); code != 2 {
		t.Fatal("-sparse conflicting with -method must be a usage error")
	}
	if code, _, errb := capture("-in", in, "-header", "-method", "dagma"); code != 2 || !strings.Contains(errb, "unknown method") {
		t.Fatalf("unknown method: exit %d, stderr: %s", code, errb)
	}
}

// writeManifest writes a JSONL fleet manifest into dir.
func writeManifest(t *testing.T, dir, doc string) string {
	t.Helper()
	path := filepath.Join(dir, "manifest.jsonl")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBatchFleet(t *testing.T) {
	dir := t.TempDir()
	in := writeChainCSV(t, true)
	outdir := filepath.Join(dir, "results")
	spec := `{"lambda": 0.2, "epsilon": 0.001, "max_outer": 2, "max_inner": 20, "parallelism": 1}`
	manifest := writeManifest(t, dir, fmt.Sprintf(`
{"id": "chain-file", "in": [%q], "header": true, "center": true, "spec": %s}
{"id": "inline", "samples": [[1,2],[2,4.1],[3,5.9],[4,8.2],[5,9.8],[6,12.1]], "spec": %s}
{"id": "inline-twin", "samples": [[1,2],[2,4.1],[3,5.9],[4,8.2],[5,9.8],[6,12.1]], "spec": %s}
`, in, spec, spec, spec))

	code, out, errb := capture("-batch", manifest, "-jobs", "2", "-outdir", outdir)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "label,state,job,cached,deduped,code,error" {
		t.Fatalf("verdict header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("want 3 verdict rows:\n%s", out)
	}
	for _, l := range lines[1:] {
		if !strings.Contains(l, ",done,") {
			t.Errorf("task did not complete: %q", l)
		}
	}
	// The identical twin deduped onto one job.
	if !strings.Contains(lines[3], "true") {
		t.Errorf("twin not deduplicated: %q", lines[3])
	}
	if !strings.Contains(errb, "fleet done:") || !strings.Contains(errb, "networks/s") {
		t.Errorf("missing fleet summary: %q", errb)
	}
	// One bnet JSON per task label.
	for _, name := range []string{"chain-file.json", "inline.json", "inline-twin.json"} {
		raw, err := os.ReadFile(filepath.Join(outdir, name))
		if err != nil {
			t.Fatalf("missing graph: %v", err)
		}
		var doc map[string]any
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Errorf("%s does not parse: %v", name, err)
		}
	}
}

func TestRunBatchPartialFailure(t *testing.T) {
	dir := t.TempDir()
	manifest := writeManifest(t, dir, `
{"id": "good", "samples": [[1,2],[2,4.1],[3,5.9],[4,8.2]], "spec": {"max_outer": 1, "max_inner": 5, "parallelism": 1}}
{"id": "broken", "in": ["/nonexistent/shard.csv"]}
`)
	code, out, errb := capture("-batch", manifest)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (a task failed)\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if !strings.Contains(out, "good,done,") {
		t.Errorf("good task did not complete:\n%s", out)
	}
	if !strings.Contains(out, "broken,failed,") || !strings.Contains(out, "validation") {
		t.Errorf("broken task missing typed validation error:\n%s", out)
	}
}

func TestRunBatchDuplicateLabelsKeepBothGraphs(t *testing.T) {
	dir := t.TempDir()
	outdir := filepath.Join(dir, "out")
	manifest := writeManifest(t, dir, `
{"id": "exp/1", "samples": [[1,2],[2,4.1],[3,5.9],[4,8.2]], "spec": {"max_outer": 1, "max_inner": 5, "parallelism": 1}}
{"id": "exp-1", "samples": [[1,1],[2,2.2],[3,2.9],[4,4.1]], "spec": {"max_outer": 1, "max_inner": 5, "parallelism": 1}}
`)
	code, out, errb := capture("-batch", manifest, "-outdir", outdir)
	if code != 0 {
		t.Fatalf("exit %d\n%s\n%s", code, out, errb)
	}
	// Both labels sanitize to "exp-1"; the second graph must not
	// silently overwrite the first.
	entries, err := os.ReadDir(outdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		names := []string{}
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("colliding labels produced %d graph files (%v), want 2", len(entries), names)
	}
}

func TestRunBatchFlagConflicts(t *testing.T) {
	if code, _, _ := capture("-in", "x.csv", "-batch", "m.jsonl"); code != 2 {
		t.Errorf("-in with -batch: exit %d, want 2", code)
	}
	// Single-mode learn flags cannot silently apply to a fleet.
	if code, _, errb := capture("-batch", "m.jsonl", "-lambda", "0.5"); code != 2 || !strings.Contains(errb, "-lambda") {
		t.Errorf("-lambda with -batch: exit %d, stderr %q", code, errb)
	}
	if code, _, errb := capture("-batch", "m.jsonl", "-method", "notears"); code != 2 || !strings.Contains(errb, "-method") {
		t.Errorf("-method with -batch: exit %d, stderr %q", code, errb)
	}
	// …and the batch-only flags cannot silently vanish in single mode.
	if code, _, errb := capture("-in", "x.csv", "-outdir", "out"); code != 2 || !strings.Contains(errb, "-outdir") {
		t.Errorf("-outdir without -batch: exit %d, stderr %q", code, errb)
	}
	if code, _, errb := capture("-in", "x.csv", "-jobs", "2"); code != 2 || !strings.Contains(errb, "-jobs") {
		t.Errorf("-jobs without -batch: exit %d, stderr %q", code, errb)
	}
	if code, _, _ := capture("-batch", "/nonexistent/m.jsonl"); code != 1 {
		t.Errorf("missing manifest: exit %d, want 1", code)
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, []byte("\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := capture("-batch", empty); code != 1 {
		t.Errorf("empty manifest: exit %d, want 1", code)
	}
}
