package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Test CPU @ 2.00GHz
BenchmarkLossDenseRows/n=2048-8         	    5000	    240913 ns/op	   8192 B/op	       2 allocs/op
BenchmarkDatasetIngestCSV/workers=1-8   	      12	  90210042 ns/op	  61.20 MB/s	 1048576 B/op	    4096 allocs/op
PASS
ok  	repro	4.2s
`

func TestRunParsesBenchStream(t *testing.T) {
	var out, errb strings.Builder
	if code := run(strings.NewReader(sample), &out, &errb, nil); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	var rep Report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("output does not parse: %v\n%s", err, out.String())
	}
	if rep.GOOS != "linux" || rep.Pkg != "repro" || rep.CPU == "" {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b0 := rep.Benchmarks[0]
	if b0.Name != "BenchmarkLossDenseRows/n=2048-8" || b0.Iterations != 5000 ||
		b0.NsPerOp != 240913 || b0.BytesPerOp != 8192 || b0.AllocsPerOp != 2 {
		t.Fatalf("bench 0: %+v", b0)
	}
	if b1 := rep.Benchmarks[1]; b1.MBPerSec != 61.20 {
		t.Fatalf("bench 1 MB/s: %+v", b1)
	}
	// The human-readable stream is teed through.
	if !strings.Contains(errb.String(), "BenchmarkLossDenseRows") {
		t.Fatal("stdin not teed to stderr")
	}
}

func TestRunRejectsEmptyStream(t *testing.T) {
	var out, errb strings.Builder
	if code := run(strings.NewReader("no benchmarks here\n"), &out, &errb, nil); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

// baselineDoc is a committed-trajectory stand-in for the -baseline
// comparison tests. The first entry deliberately lacks the
// "-<GOMAXPROCS>" suffix (a 1-core recording) while the fresh stream
// carries "-8": comparison must match on the normalized name.
const baselineDoc = `{
  "benchmarks": [
    {"name": "BenchmarkLossGram/n=2048", "iterations": 5000, "ns_per_op": 100000},
    {"name": "BenchmarkLossGram/n=16384-8", "iterations": 5000, "ns_per_op": 120000}
  ]
}`

// freshStream renders a bench stream with the given ns/op for the two
// Gram benchmarks plus an unrelated benchmark the filter must skip.
func freshStream(ns1, ns2 int) string {
	return "goos: linux\n" +
		"BenchmarkLossGram/n=2048-8 \t 5000 \t " + strconv.Itoa(ns1) + " ns/op\n" +
		"BenchmarkLossGram/n=16384-8 \t 5000 \t " + strconv.Itoa(ns2) + " ns/op\n" +
		"BenchmarkUnrelated-8 \t 1000 \t 999999999 ns/op\n" +
		"PASS\n"
}

func checkAgainst(t *testing.T, stream string, extra ...string) (int, string) {
	t.Helper()
	base := filepath.Join(t.TempDir(), "BENCH_BASE.json")
	if err := os.WriteFile(base, []byte(baselineDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	args := append([]string{"-baseline", base, "-filter", "LossGram", "-max-ratio", "2"}, extra...)
	code := run(strings.NewReader(stream), &out, &errb, args)
	return code, errb.String()
}

func TestCheckPassesWithinRatio(t *testing.T) {
	code, msg := checkAgainst(t, freshStream(150000, 120000)) // 1.5x and 1.0x
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, msg)
	}
	if !strings.Contains(msg, "2 benchmarks within") {
		t.Errorf("summary missing: %s", msg)
	}
	// The raw stream is teed through; only comparison lines (prefixed
	// "benchjson:") must respect the filter.
	if strings.Contains(msg, "benchjson: BenchmarkUnrelated") {
		t.Errorf("filter leaked: %s", msg)
	}
}

func TestCheckFailsOnRegression(t *testing.T) {
	code, msg := checkAgainst(t, freshStream(250000, 120000)) // 2.5x regression
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, msg)
	}
	if !strings.Contains(msg, "REGRESSION") || !strings.Contains(msg, "n=2048") {
		t.Errorf("regression not named: %s", msg)
	}
}

func TestCheckFailsWhenNothingCompared(t *testing.T) {
	// A benchmark missing from the baseline is reported but skipped; a
	// filter matching nothing at all fails the gate outright.
	stream := "BenchmarkLossGram/new-shape-8 \t 10 \t 5 ns/op\nPASS\n"
	if code, msg := checkAgainst(t, stream); code != 1 || !strings.Contains(msg, "no benchmarks matched") {
		t.Fatalf("exit %d:\n%s", code, msg)
	}
	if code, _ := checkAgainst(t, freshStream(1, 1), "-filter", "NothingMatches"); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var out, errb strings.Builder
	if code := run(strings.NewReader(freshStream(1, 1)), &out, &errb, []string{"-filter", "("}); code != 2 {
		t.Fatalf("bad -filter regexp: exit %d, want 2", code)
	}
}
