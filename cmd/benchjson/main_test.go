package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Test CPU @ 2.00GHz
BenchmarkLossDenseRows/n=2048-8         	    5000	    240913 ns/op	   8192 B/op	       2 allocs/op
BenchmarkDatasetIngestCSV/workers=1-8   	      12	  90210042 ns/op	  61.20 MB/s	 1048576 B/op	    4096 allocs/op
PASS
ok  	repro	4.2s
`

func TestRunParsesBenchStream(t *testing.T) {
	var out, errb strings.Builder
	if code := run(strings.NewReader(sample), &out, &errb, nil); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	var rep Report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("output does not parse: %v\n%s", err, out.String())
	}
	if rep.GOOS != "linux" || rep.Pkg != "repro" || rep.CPU == "" {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b0 := rep.Benchmarks[0]
	if b0.Name != "BenchmarkLossDenseRows/n=2048-8" || b0.Iterations != 5000 ||
		b0.NsPerOp != 240913 || b0.BytesPerOp != 8192 || b0.AllocsPerOp != 2 {
		t.Fatalf("bench 0: %+v", b0)
	}
	if b1 := rep.Benchmarks[1]; b1.MBPerSec != 61.20 {
		t.Fatalf("bench 1 MB/s: %+v", b1)
	}
	// The human-readable stream is teed through.
	if !strings.Contains(errb.String(), "BenchmarkLossDenseRows") {
		t.Fatal("stdin not teed to stderr")
	}
}

func TestRunRejectsEmptyStream(t *testing.T) {
	var out, errb strings.Builder
	if code := run(strings.NewReader("no benchmarks here\n"), &out, &errb, nil); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}
