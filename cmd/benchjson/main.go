// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document — the PR-over-PR performance
// trajectory artifact (`make bench-json` → BENCH_PR4.json). It reads
// the benchmark stream on stdin, passes it through to stderr so the
// run stays watchable, and writes one JSON object to -out (or stdout).
//
// With -baseline it additionally becomes the nightly regression gate
// (`make bench-check`): every fresh result whose name matches -filter
// and appears in the baseline document is compared on ns/op, and the
// run fails when any exceeds -max-ratio times its committed timing.
// Benchmarks absent from the baseline are reported but never fail the
// gate — new benchmarks must be able to land before their baseline.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem . | benchjson -out BENCH.json
//	go test -run xxx -bench LossGram -benchmem . | \
//	    benchjson -baseline BENCH_PR4.json -filter LossGram -max-ratio 2
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the emitted document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() { os.Exit(run(os.Stdin, os.Stdout, os.Stderr, os.Args[1:])) }

func run(stdin io.Reader, stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "", "output path (default: stdout unless -baseline is set)")
	in := fs.String("in", "", "read an existing bench JSON document instead of parsing go test output on stdin (leastload reports, prior -out files)")
	baseline := fs.String("baseline", "", "compare against this committed bench JSON instead of emitting a document")
	filterStr := fs.String("filter", "", "regexp restricting which benchmarks the -baseline comparison covers (default: all)")
	maxRatio := fs.Float64("max-ratio", 2, "fail when fresh ns/op exceeds this multiple of the baseline")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	filter, err := regexp.Compile(*filterStr)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson: bad -filter:", err)
		return 2
	}

	rep := Report{Benchmarks: []Benchmark{}}
	if *in != "" {
		// Documents from a prior -out run or from `leastload -out` skip
		// the text parse — this is how the load-test gate reuses the
		// baseline machinery below.
		raw, err := os.ReadFile(*in)
		if err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		if err := json.Unmarshal(raw, &rep); err != nil {
			fmt.Fprintf(stderr, "benchjson: %s: %v\n", *in, err)
			return 1
		}
	} else {
		sc := bufio.NewScanner(stdin)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(stderr, line) // tee: keep the human-readable stream
			switch {
			case strings.HasPrefix(line, "goos: "):
				rep.GOOS = strings.TrimPrefix(line, "goos: ")
			case strings.HasPrefix(line, "goarch: "):
				rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
			case strings.HasPrefix(line, "pkg: "):
				rep.Pkg = strings.TrimPrefix(line, "pkg: ")
			case strings.HasPrefix(line, "cpu: "):
				rep.CPU = strings.TrimPrefix(line, "cpu: ")
			case strings.HasPrefix(line, "Benchmark"):
				if b, ok := parseBench(line); ok {
					rep.Benchmarks = append(rep.Benchmarks, b)
				}
			}
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark results to process")
		return 1
	}

	if *baseline != "" {
		return check(rep, *baseline, filter, *maxRatio, stderr)
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	doc = append(doc, '\n')
	if *out == "" {
		_, err = stdout.Write(doc)
	} else {
		err = os.WriteFile(*out, doc, 0o644)
	}
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	return 0
}

// check compares the fresh results against a committed baseline
// document, failing on any filtered benchmark slower than ratio × its
// baseline ns/op. Comparing zero benchmarks is itself a failure — a
// gate whose filter matches nothing protects nothing.
func check(rep Report, baselinePath string, filter *regexp.Regexp, ratio float64, stderr io.Writer) int {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(stderr, "benchjson: %s: %v\n", baselinePath, err)
		return 1
	}
	// Index the baseline under both the raw and the normalized name;
	// look the fresh result up raw-first. Raw-to-raw matches exactly;
	// the normalized key bridges runs whose GOMAXPROCS suffix differs
	// (1-core recording vs N-core runner) without letting the strip
	// eat a legitimate "-2" sub-benchmark suffix when both sides carry
	// their raw names.
	baseNs := make(map[string]float64, 2*len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		if k := benchKey(b.Name); k != b.Name {
			if _, dup := baseNs[k]; !dup {
				baseNs[k] = b.NsPerOp
			}
		}
	}
	for _, b := range base.Benchmarks {
		baseNs[b.Name] = b.NsPerOp // raw names win over normalized ones
	}
	compared, failed := 0, 0
	for _, b := range rep.Benchmarks {
		if !filter.MatchString(b.Name) {
			continue
		}
		was, ok := baseNs[b.Name]
		if !ok {
			was, ok = baseNs[benchKey(b.Name)]
		}
		if !ok || was <= 0 {
			fmt.Fprintf(stderr, "benchjson: %s: no baseline in %s (skipped)\n", b.Name, baselinePath)
			continue
		}
		compared++
		r := b.NsPerOp / was
		verdict := "ok"
		if r > ratio {
			verdict = "REGRESSION"
			failed++
		}
		fmt.Fprintf(stderr, "benchjson: %-40s %12.0f ns/op vs %12.0f baseline (%.2fx, limit %.2gx) %s\n",
			b.Name, b.NsPerOp, was, r, ratio, verdict)
	}
	if compared == 0 {
		fmt.Fprintf(stderr, "benchjson: no benchmarks matched both -filter %q and the baseline\n", filter)
		return 1
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "benchjson: %d of %d benchmarks regressed past %.2gx\n", failed, compared, ratio)
		return 1
	}
	fmt.Fprintf(stderr, "benchjson: %d benchmarks within %.2gx of %s\n", compared, ratio, baselinePath)
	return 0
}

// benchKey strips the trailing "-<GOMAXPROCS>" suffix the testing
// package appends on multi-core runs, so a baseline recorded on a
// 1-core box (no suffix) still matches a fresh run on an N-core CI
// runner ("BenchmarkLossGram/n=2048-4") and vice versa.
var procSuffixRE = regexp.MustCompile(`-\d+$`)

func benchKey(name string) string { return procSuffixRE.ReplaceAllString(name, "") }

// parseBench parses one result line, e.g.
//
//	BenchmarkLossGram/n=2048-8  5000  240913 ns/op  33.1 MB/s  8192 B/op  2 allocs/op
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
			seen = true
		case "MB/s":
			b.MBPerSec = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	return b, seen
}
