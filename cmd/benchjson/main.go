// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document — the PR-over-PR performance
// trajectory artifact (`make bench-json` → BENCH_PR4.json). It reads
// the benchmark stream on stdin, passes it through to stderr so the
// run stays watchable, and writes one JSON object to -out (or stdout).
//
// Usage:
//
//	go test -run xxx -bench . -benchmem . | benchjson -out BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the emitted document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() { os.Exit(run(os.Stdin, os.Stdout, os.Stderr, os.Args[1:])) }

func run(stdin io.Reader, stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "", "output path (default: stdout)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	rep := Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(stderr, line) // tee: keep the human-readable stream
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines on stdin")
		return 1
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	doc = append(doc, '\n')
	if *out == "" {
		_, err = stdout.Write(doc)
	} else {
		err = os.WriteFile(*out, doc, 0o644)
	}
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	return 0
}

// parseBench parses one result line, e.g.
//
//	BenchmarkLossGram/n=2048-8  5000  240913 ns/op  33.1 MB/s  8192 B/op  2 allocs/op
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
			seen = true
		case "MB/s":
			b.MBPerSec = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	return b, seen
}
