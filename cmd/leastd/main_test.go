package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a concurrency-safe writer the daemon logs into while
// the test polls it for the bound address.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

func TestRunFlagErrors(t *testing.T) {
	ctx := context.Background()
	var out, errb syncBuffer
	if code := run(ctx, []string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code := run(ctx, []string{"-jobs", "0"}, &out, &errb); code != 2 {
		t.Errorf("jobs=0: exit %d, want 2", code)
	}
	if code := run(ctx, []string{"-addr", "256.256.256.256:1"}, &out, &errb); code != 1 {
		t.Errorf("unlistenable addr: exit %d, want 1", code)
	}
}

var listenRE = regexp.MustCompile(`listening on ([^ ]+)`)

func TestDaemonServesAndShutsDownGracefully(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errb syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-jobs", "1", "-grace", "2s"}, &out, &errb)
	}()

	// Wait for the daemon to report its bound address.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := listenRE.FindStringSubmatch(errb.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never listened; stderr:\n%s", errb.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	// Submit a tiny job through the real daemon and wait for it.
	submit := `{"samples": [[1,2],[2,4],[3,5],[0.5,1.2],[1.5,2.9],[2.5,5.2],[0.2,0.3],[1.8,3.7]],
	            "options": {"lambda": 0.1, "max_outer": 4}}`
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(submit))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}

	// Graceful shutdown: SIGINT equivalent.
	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("daemon exit %d; stderr:\n%s", code, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not shut down; stderr:\n%s", errb.String())
	}
	if !strings.Contains(errb.String(), "shutting down") {
		t.Errorf("missing shutdown log; stderr:\n%s", errb.String())
	}
	// The drained daemon must refuse new connections.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("daemon still serving after shutdown")
	}
}

func TestDaemonEndToEndJobOverHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("full daemon round trip skipped in -short")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errb syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-jobs", "1"}, &out, &errb)
	}()
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := listenRE.FindStringSubmatch(errb.String()); m != nil {
			addr = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("daemon never listened; stderr:\n%s", errb.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	base := "http://" + addr

	// Chain data A→B→C, CSV form — the curl walkthrough of the README.
	var sb strings.Builder
	sb.WriteString("A,B,C\n")
	state := uint64(7)
	noise := func() float64 {
		var s float64
		for k := 0; k < 4; k++ {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			s += float64(state%1000)/1000.0 - 0.5
		}
		return s * 0.1
	}
	for i := 0; i < 150; i++ {
		a := noise() * 10
		b := 1.5*a + noise()
		c := -1.2*b + noise()
		fmt.Fprintf(&sb, "%.6f,%.6f,%.6f\n", a, b, c)
	}
	csvDoc := strings.ReplaceAll(sb.String(), "\n", `\n`)
	submit := fmt.Sprintf(`{"csv": "%s", "header": true, "center": true, "options": {"epsilon": 0.001}}`, csvDoc)
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(submit))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	idm := regexp.MustCompile(`"id": "([^"]+)"`).FindStringSubmatch(string(body))
	if idm == nil {
		t.Fatalf("no job id in %s", body)
	}
	id := idm[1]

	pollDeadline := time.Now().Add(60 * time.Second)
	for {
		resp, err = http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		body, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(body), `"done"`) {
			break
		}
		if strings.Contains(string(body), `"failed"`) || time.Now().After(pollDeadline) {
			t.Fatalf("job did not finish: %s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err = http.Get(base + "/v1/jobs/" + id + "/graph?tau=0.3")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"nodes"`) {
		t.Fatalf("graph: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "A") || !strings.Contains(string(body), `"edges"`) {
		t.Fatalf("graph missing named nodes/edges: %s", body)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit")
	}
}

// startDaemon launches run() in-process and waits for the bound
// address.
func startDaemon(t *testing.T, ctx context.Context, args []string) (string, *syncBuffer, chan int) {
	t.Helper()
	var out, errb syncBuffer
	done := make(chan int, 1)
	go func() { done <- run(ctx, args, &out, &errb) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(errb.String()); m != nil {
			return m[1], &errb, done
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never listened; stderr:\n%s", errb.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(body)
}

// TestDaemonJournalRestartRecovers is the daemon-level restart round
// trip: a journaled leastd finishes a job, restarts on the same
// directory, and serves the recovered job's id and the byte-identical
// learned graph — the README "Durability" walkthrough as a test.
func TestDaemonJournalRestartRecovers(t *testing.T) {
	dir := t.TempDir()
	args := func() []string {
		return []string{"-addr", "127.0.0.1:0", "-jobs", "1", "-journal-dir", dir}
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	addr, _, done := startDaemon(t, ctx1, args())
	base := "http://" + addr

	submit := `{"samples": [[1,2],[2,4],[3,5],[0.5,1.2],[1.5,2.9],[2.5,5.2],[0.2,0.3],[1.8,3.7]],
	            "options": {"lambda": 0.1, "max_outer": 4}}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(submit))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	idm := regexp.MustCompile(`"id": "([^"]+)"`).FindStringSubmatch(string(body))
	if idm == nil {
		t.Fatalf("no job id in %s", body)
	}
	id := idm[1]
	pollDeadline := time.Now().Add(60 * time.Second)
	for {
		_, st := getBody(t, base+"/v1/jobs/"+id)
		if strings.Contains(st, `"done"`) {
			break
		}
		if strings.Contains(st, `"failed"`) || time.Now().After(pollDeadline) {
			t.Fatalf("job did not finish: %s", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code, hz := getBody(t, base+"/healthz"); code != http.StatusOK || !strings.Contains(hz, `"journal"`) {
		t.Fatalf("journaled daemon /healthz lacks the journal block: %d %s", code, hz)
	}
	_, wantGraph := getBody(t, base+"/v1/jobs/"+id+"/graph?tau=0.3")
	cancel1()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("first daemon exit %d", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("first daemon did not shut down")
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	addr2, errb2, done2 := startDaemon(t, ctx2, args())
	base2 := "http://" + addr2
	if !strings.Contains(errb2.String(), "replayed") {
		t.Fatalf("restarted daemon did not report replay; stderr:\n%s", errb2.String())
	}
	code, st := getBody(t, base2+"/v1/jobs/"+id)
	if code != http.StatusOK || !strings.Contains(st, `"done"`) {
		t.Fatalf("recovered daemon lost job %s: %d %s", id, code, st)
	}
	code, gotGraph := getBody(t, base2+"/v1/jobs/"+id+"/graph?tau=0.3")
	if code != http.StatusOK || gotGraph != wantGraph {
		t.Fatalf("recovered graph differs:\n got: %swant: %s", gotGraph, wantGraph)
	}
	code, metrics := getBody(t, base2+"/metrics")
	if code != http.StatusOK || strings.Contains(metrics, "least_journal_replayed_records_total 0\n") {
		t.Fatalf("restarted daemon reports zero replayed records:\n%s", metrics)
	}
	cancel2()
	select {
	case code := <-done2:
		if code != 0 {
			t.Fatalf("second daemon exit %d", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("second daemon did not shut down")
	}
}

// TestDaemonDrainsWithOpenEventStream pins the shutdown ordering: the
// job drain must overlap the HTTP drain, because a v2 SSE stream only
// ends when its job goes terminal. With the drains sequenced the other
// way, SIGTERM burns the whole grace period blocked on the open stream
// and srv.Shutdown reports a deadline error.
func TestDaemonDrainsWithOpenEventStream(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errb syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-jobs", "1", "-grace", "3s"}, &out, &errb)
	}()
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := listenRE.FindStringSubmatch(errb.String()); m != nil {
			addr = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("daemon never listened; stderr:\n%s", errb.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	base := "http://" + addr

	// A job the pool cannot finish within the grace period, with an SSE
	// watcher on it. Independent low-dimensional noise converges in
	// under a second on a slow machine, so use a wide, strongly
	// chain-correlated instance with an unreachable ε — the same shape
	// the serve cancellation tests rely on for a long-running learn.
	const dVars, nRows = 60, 250
	var rows strings.Builder
	rows.WriteString(`{"samples": [`)
	state := uint64(3)
	val := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%2000)/1000.0 - 1
	}
	for i := 0; i < nRows; i++ {
		if i > 0 {
			rows.WriteString(",")
		}
		rows.WriteString("[")
		prev := 0.0
		for j := 0; j < dVars; j++ {
			x := 1.1*prev + 0.4*val()
			if j > 0 {
				rows.WriteString(",")
			}
			fmt.Fprintf(&rows, "%f", x)
			prev = x
		}
		rows.WriteString("]")
	}
	rows.WriteString(`], "spec": {"lambda": 0.01, "epsilon": 1e-12, "max_inner": 2000, "max_outer": 64}}`)
	resp, err := http.Post(base+"/v2/jobs", "application/json", strings.NewReader(rows.String()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	idm := regexp.MustCompile(`"id": "([^"]+)"`).FindStringSubmatch(string(body))
	if idm == nil {
		t.Fatalf("no job id in %s", body)
	}

	events, err := http.Get(base + "/v2/jobs/" + idm[1] + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer events.Body.Close()
	streamed := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(events.Body) // returns when the daemon drains
		streamed <- string(b)
	}()

	time.Sleep(300 * time.Millisecond) // let the stream attach
	cancel()                           // SIGTERM equivalent
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("daemon exit %d; stderr:\n%s", code, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon wedged behind the open event stream; stderr:\n%s", errb.String())
	}
	if strings.Contains(errb.String(), "http shutdown") {
		t.Fatalf("HTTP drain timed out behind the event stream; stderr:\n%s", errb.String())
	}
	select {
	case s := <-streamed:
		if !strings.Contains(s, "event: cancelled") {
			t.Fatalf("stream ended without a terminal frame:\n%s", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("event stream never closed")
	}
}
