// Command leastd serves LEAST structure learning over HTTP — the
// reproduction of the paper's §VI deployment shape, where thousands of
// learning tasks a day run as a service behind monitoring and
// recommendation pipelines. It fronts a bounded concurrent-learn pool
// (internal/serve) with cancellable jobs, iteration-level progress and
// an LRU result cache; see DESIGN.md §4 and the README "Serving"
// walkthrough.
//
// Usage:
//
//	leastd -addr :8080 -jobs 2 -cache 64
//
// API (JSON). The v2 surface speaks the least.Spec wire form — a
// "method" field selecting least / least-sp / notears, validated
// knobs, unset ≠ zero — and streams live progress over SSE; the v1
// surface keeps the legacy zero-means-default options and answers
// byte-compatibly forever (see DESIGN.md §5 for the mapping):
//
//	POST   /v2/jobs             submit: {"csv": "..."} or {"samples": ...}
//	                            or {"dataset_ref": "d00000001"}, plus
//	                            {"spec": {"method": "notears", ...}}
//	GET    /v2/jobs             list jobs (statuses carry "method", shape
//	                            and the dataset fingerprint)
//	GET    /v2/jobs/{id}        status + iteration progress + method
//	GET    /v2/jobs/{id}/graph  learned network (bnet JSON), ?tau=0.3
//	GET    /v2/jobs/{id}/events per-iteration progress over SSE
//	DELETE /v2/jobs/{id}        cancel (mid-run cancellation lands
//	                            within one inner iteration)
//	POST   /v2/datasets         register samples once, learn many times:
//	                            jobs then submit by dataset_ref and the
//	                            result cache keys on the fingerprint
//	GET    /v2/datasets         list registered datasets
//	GET    /v2/datasets/{id}    dataset metadata (n, d, fingerprint)
//	DELETE /v2/datasets/{id}    unregister
//
//	POST   /v2/batches          submit a fleet manifest: {"tasks": [...]},
//	                            each task inline data or dataset_ref plus
//	                            a spec; identical tasks dedupe onto one
//	                            solve, bad tasks land in the per-task
//	                            error table (code: validation | shed |
//	                            cancelled | internal), and concurrent
//	                            batches share the pool fairly
//	GET    /v2/batches          list batch progress counters
//	GET    /v2/batches/{id}     one batch's counters
//	GET    /v2/batches/{id}/tasks   page per-task results, ?offset=&limit=
//	GET    /v2/batches/{id}/events  batch progress counters over SSE
//	DELETE /v2/batches/{id}     cancel every queued + running task
//
//	GET    /v2/jobs/{id}/query/summary    compiled-network shape + acyclicity
//	GET    /v2/jobs/{id}/query/parents    ?node= weighted parent set
//	GET    /v2/jobs/{id}/query/children   ?node= weighted child set
//	GET    /v2/jobs/{id}/query/blanket    ?node= Markov blanket
//	GET    /v2/jobs/{id}/query/dsep       ?x=&y=&z=a,b d-separation verdict
//	GET    /v2/batches/{id}/edges         cross-task edge confidence
//
//	POST   /v1/jobs             submit with {"options": {"sparse": true, ...}}
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        status + iteration progress
//	GET    /v1/jobs/{id}/graph  learned network
//	DELETE /v1/jobs/{id}        cancel
//	GET    /healthz             liveness + cache counters
//	GET    /metrics             Prometheus text exposition (DESIGN.md §10)
//
// -debug-addr serves net/http/pprof on a second listener (off by
// default; never on the API address), so a saturated daemon can be
// profiled live without exposing profiles to API clients.
//
// -journal-dir enables durable fleet state (DESIGN.md §11): every
// admission and terminal transition is appended to a write-ahead
// journal in that directory, and a restarted daemon replays it —
// datasets, finished results and the result cache come back, queued
// batch tasks resume on the pool, and interrupted interactive jobs
// fail with the typed "restart" code. -journal-fsync sets the
// group-commit interval (0 = fsync every append) and
// -journal-compact-every the snapshot compaction threshold (-1
// disables). Empty -journal-dir (the default) keeps the daemon purely
// in-memory, byte-identical to previous releases.
//
// SIGINT/SIGTERM drain gracefully: in-flight HTTP requests and running
// jobs get a grace period before being cancelled.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run drives one leastd invocation; split from main so the smoke tests
// can exercise the daemon in-process. It serves until ctx is
// cancelled, then drains.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("leastd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	jobs := fs.Int("jobs", 2, "concurrent learn jobs (each job's parallelism is capped at cores/jobs)")
	queue := fs.Int("queue", 64, "admission queue depth before load shedding")
	cache := fs.Int("cache", 64, "result-cache capacity in entries (-1 disables)")
	queryCache := fs.Int("query-cache", 128, "compiled-form query cache capacity in entries (-1 disables)")
	datasets := fs.Int("datasets", 32, "registered-dataset store capacity in entries (-1 disables)")
	backlog := fs.Int("batch-backlog", 16384, "queued-task bound across all batches before per-task shedding")
	fleetDim := fs.Int("fleet-dim", 64, "gang-schedule batch tasks with at most this many variables (-1 disables)")
	grace := fs.Duration("grace", 10*time.Second, "shutdown grace period for running jobs")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this address (empty disables)")
	journalDir := fs.String("journal-dir", "", "write-ahead journal directory for crash recovery (empty disables durability)")
	journalFsync := fs.Duration("journal-fsync", 25*time.Millisecond, "journal group-commit fsync interval (0 fsyncs every append)")
	journalCompact := fs.Int("journal-compact-every", 4096, "journal records between snapshot compactions (-1 disables)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if *jobs < 1 || *queue < 1 {
		fmt.Fprintln(stderr, "leastd: -jobs and -queue must be at least 1")
		return 2
	}

	// Config treats zero as "pick the default", so the flag values that
	// mean "most aggressive" map to the Config's negative sentinels.
	fsync := *journalFsync
	if fsync == 0 {
		fsync = -1 // fsync on every append
	}
	compact := *journalCompact
	if compact == 0 {
		compact = -1
	}
	mgr, err := serve.OpenManager(serve.Config{
		MaxConcurrent:       *jobs,
		QueueDepth:          *queue,
		CacheSize:           *cache,
		QueryCacheSize:      *queryCache,
		DatasetCapacity:     *datasets,
		BatchBacklog:        *backlog,
		FleetDim:            *fleetDim,
		JournalDir:          *journalDir,
		JournalFsync:        fsync,
		JournalCompactEvery: compact,
	})
	if err != nil {
		fmt.Fprintln(stderr, "leastd:", err)
		return 1
	}
	if *journalDir != "" {
		replayed := mgr.Metrics().JournalReplayed.Load()
		restarts := mgr.Metrics().JournalRestarts.Load()
		resumed := mgr.Metrics().JournalResumed.Load()
		fmt.Fprintf(stderr, "leastd: journal %s: replayed %d records (%d tasks resumed, %d restart failures)\n",
			*journalDir, replayed, resumed, restarts)
	}
	srv := &http.Server{Handler: serve.NewAPI(mgr).Handler()}

	// The pprof surface lives on its own listener, registered on its
	// own mux (never the DefaultServeMux, never the API handler): the
	// API port stays profile-free, and leaving -debug-addr empty keeps
	// the whole surface off.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(stderr, "leastd: debug listener:", err)
			return 1
		}
		dm := http.NewServeMux()
		dm.HandleFunc("/debug/pprof/", pprof.Index)
		dm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dsrv := &http.Server{Handler: dm}
		defer dsrv.Close()
		go func() { _ = dsrv.Serve(dln) }()
		fmt.Fprintf(stderr, "leastd debug (pprof) on %s\n", dln.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "leastd:", err)
		return 1
	}
	fmt.Fprintf(stderr, "leastd listening on %s (jobs=%d queue=%d cache=%d)\n",
		ln.Addr(), *jobs, *queue, *cache)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(stderr, "leastd: shutting down")
		// Drain the job pool first, then the HTTP server, each under
		// its own grace budget. The order matters: a v2 SSE stream
		// (GET /v2/jobs/{id}/events) only ends when its job reaches a
		// terminal state, which is the manager drain's doing — shutting
		// the server down first would park the whole drain behind open
		// event streams for the full grace period. New submissions are
		// refused (503) from the moment the manager starts draining.
		jobsCtx, cancelJobs := context.WithTimeout(context.Background(), *grace)
		defer cancelJobs()
		mgr.Shutdown(jobsCtx)
		httpCtx, cancelHTTP := context.WithTimeout(context.Background(), *grace)
		defer cancelHTTP()
		if err := srv.Shutdown(httpCtx); err != nil {
			fmt.Fprintln(stderr, "leastd: http shutdown:", err)
		}
		<-errc // Serve has returned http.ErrServerClosed
		return 0
	case err := <-errc:
		// Listener failed underneath us; drain with the same grace
		// budget so a long-running job cannot wedge the exit.
		fmt.Fprintln(stderr, "leastd:", err)
		jobsCtx, cancelJobs := context.WithTimeout(context.Background(), *grace)
		defer cancelJobs()
		mgr.Shutdown(jobsCtx)
		return 1
	}
}
