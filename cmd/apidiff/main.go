// Command apidiff guards the public surface of package least against
// accidental breakage: it lists every exported identifier (types,
// funcs, methods, consts, vars) of the package in -dir, together with
// its deprecation status, and compares the list against a checked-in
// baseline. An identifier present in the baseline but missing from the
// sources fails the check — unless the baseline recorded it as
// deprecated, which is the sanctioned removal path: mark it
// "Deprecated:" in one release, delete it in a later one. New
// identifiers never fail; refresh the baseline with -write so they
// become guarded too.
//
// Usage:
//
//	apidiff -dir . -baseline api/least.txt          # check (CI)
//	apidiff -dir . -baseline api/least.txt -write   # refresh baseline
//
// Wired into `make api-check`, which `make ci` runs.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("apidiff", flag.ContinueOnError)
	dir := fs.String("dir", ".", "directory holding the package sources")
	baseline := fs.String("baseline", "api/least.txt", "baseline file to compare against (or write)")
	write := fs.Bool("write", false, "rewrite the baseline from the current sources")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	current, err := exportedIdents(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apidiff:", err)
		return 1
	}

	if *write {
		if err := writeBaseline(*baseline, current); err != nil {
			fmt.Fprintln(os.Stderr, "apidiff:", err)
			return 1
		}
		fmt.Printf("apidiff: wrote %d identifiers to %s\n", len(current), *baseline)
		return 0
	}

	base, err := readBaseline(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apidiff:", err)
		fmt.Fprintln(os.Stderr, "apidiff: regenerate with -write (make api-baseline)")
		return 1
	}

	fail := 0
	var names []string
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, ok := current[name]; ok {
			continue
		}
		if base[name] { // was deprecated: removal is sanctioned
			fmt.Printf("apidiff: note: deprecated identifier removed: %s (refresh the baseline)\n", name)
			continue
		}
		fmt.Fprintf(os.Stderr, "apidiff: FAIL: exported identifier disappeared without a Deprecated: marker: %s\n", name)
		fail++
	}
	added := 0
	for name := range current {
		if _, ok := base[name]; !ok {
			added++
		}
	}
	if added > 0 {
		fmt.Printf("apidiff: note: %d new exported identifier(s) not yet in the baseline (run make api-baseline to guard them)\n", added)
	}
	if fail > 0 {
		fmt.Fprintf(os.Stderr, "apidiff: %d breaking removal(s); deprecate first, remove later\n", fail)
		return 1
	}
	fmt.Printf("apidiff: OK — %d guarded identifiers all present\n", len(base))
	return 0
}

// exportedIdents parses the non-test Go files of dir and returns
// exported identifier → deprecated?, with methods listed as
// "Type.Method".
func exportedIdents(dir string) (map[string]bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	out := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		collectFile(f, out)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no exported identifiers found in %s — wrong -dir?", dir)
	}
	return out, nil
}

func collectFile(f *ast.File, out map[string]bool) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			name := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) > 0 {
				recv := receiverName(d.Recv.List[0].Type)
				if recv == "" || !ast.IsExported(recv) {
					continue
				}
				name = recv + "." + name
			}
			out[name] = isDeprecated(d.Doc)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() {
						out[s.Name.Name] = isDeprecated(d.Doc) || isDeprecated(s.Doc)
					}
				case *ast.ValueSpec:
					for _, id := range s.Names {
						if id.IsExported() {
							out[id.Name] = isDeprecated(d.Doc) || isDeprecated(s.Doc)
						}
					}
				}
			}
		}
	}
}

// receiverName unwraps *T / T / generic T[P] receivers to T.
func receiverName(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr:
			expr = t.X
		case *ast.IndexListExpr:
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

func isDeprecated(doc *ast.CommentGroup) bool {
	return doc != nil && strings.Contains(doc.Text(), "Deprecated:")
}

// The baseline format: one identifier per line, sorted, with a
// "deprecated" marker column when applicable. Lines starting with #
// are comments.
func writeBaseline(path string, idents map[string]bool) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	names := make([]string, 0, len(idents))
	for name := range idents {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString("# Exported identifiers of package least, guarded by cmd/apidiff.\n")
	sb.WriteString("# Regenerate with: make api-baseline\n")
	for _, name := range names {
		sb.WriteString(name)
		if idents[name] {
			sb.WriteString(" deprecated")
		}
		sb.WriteString("\n")
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

func readBaseline(path string) (map[string]bool, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]bool)
	for ln, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case len(fields) == 1:
			out[fields[0]] = false
		case len(fields) == 2 && fields[1] == "deprecated":
			out[fields[0]] = true
		default:
			return nil, fmt.Errorf("%s:%d: malformed baseline line %q", path, ln+1, line)
		}
	}
	return out, nil
}
