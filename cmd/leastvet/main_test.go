package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// The smoke tests drive run() in-process over miniature fixture
// modules: a clean one must exit 0, a seeded defect must exit 1 with a
// compiler-style diagnostic.

func TestCleanModuleExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-dir", filepath.Join("testdata", "cleanmod")}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d on clean module\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "OK") {
		t.Fatalf("no OK summary:\n%s", out.String())
	}
}

func TestSeededDefectExitsOne(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-dir", filepath.Join("testdata", "dirtymod")}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d on dirty module, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	diag := out.String()
	if !strings.Contains(diag, "[determinism]") || !strings.Contains(diag, "time.Now") {
		t.Fatalf("missing determinism diagnostic:\n%s", diag)
	}
	if !strings.Contains(diag, filepath.Join("internal", "mat", "kernel.go")+":") {
		t.Fatalf("diagnostic path not relative to the module root:\n%s", diag)
	}
}

func TestOnlyFlagRejectsUnknownAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d for unknown analyzer, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Fatalf("unhelpful error:\n%s", errb.String())
	}
}
