// Command leastvet runs the project-invariant analyzer suite
// (internal/analysis) over the whole module: the mechanical
// enforcement of the DESIGN.md contracts — kernel bit-determinism,
// atomic counter discipline, typed task error codes, ctx-threading on
// serving paths, pooled-workspace hygiene and the frozen wire shapes.
// DESIGN.md §12 catalogues the invariants; CONTRIBUTING.md explains
// how to add an analyzer.
//
// Like cmd/apidiff it is dependency-free: packages are parsed with
// go/parser and type-checked with go/types against the source
// importer, so the only requirement is a GOROOT with stdlib sources.
//
// Usage:
//
//	leastvet -dir .                       # analyze the module (CI: make lint)
//	leastvet -dir . -write-wire           # regenerate api/wireshape.json
//	leastvet -dir . -only ctxflow,typederr
//
// Exit status: 0 clean, 1 findings, 2 load or usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("leastvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "module root to analyze")
	wire := fs.String("wire", "", "wire-shape manifest path (default <dir>/api/wireshape.json)")
	writeWire := fs.Bool("write-wire", false, "regenerate the wire-shape manifest instead of checking")
	only := fs.String("only", "", "comma-separated analyzer names to run (default all)")
	verbose := fs.Bool("v", false, "log each package as it is analyzed")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *wire == "" {
		*wire = filepath.Join(*dir, "api", "wireshape.json")
	}

	suite, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, "leastvet:", err)
		return 2
	}

	mod, err := loadModule(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "leastvet:", err)
		return 2
	}

	manifest, manifestErr := readWireManifest(*wire)
	if *writeWire {
		manifest = nil // regeneration: compute without comparing
	}

	computed := make(map[string]string)
	var diags []analysis.Diagnostic
	for _, path := range mod.paths {
		applicable := applicableAnalyzers(suite, path)
		if len(applicable) == 0 {
			continue
		}
		if *verbose {
			fmt.Fprintf(stderr, "leastvet: %s (%s)\n", path, analyzerNames(applicable))
		}
		pkg, info, files, err := mod.checkForAnalysis(path)
		if err != nil {
			fmt.Fprintf(stderr, "leastvet: %s: %v\n", path, err)
			return 2
		}
		pass := &analysis.Pass{
			Fset:         mod.fset,
			Files:        files,
			Pkg:          pkg,
			Info:         info,
			Deprecated:   mod.deprecated,
			WireManifest: manifest,
			WireComputed: computed,
		}
		for _, a := range applicable {
			diags = append(diags, analysis.RunAnalyzer(a, pass)...)
		}
	}

	if *writeWire {
		if err := writeWireManifest(*wire, computed); err != nil {
			fmt.Fprintln(stderr, "leastvet:", err)
			return 2
		}
		fmt.Fprintf(stdout, "leastvet: wrote %d wire signatures to %s\n", len(computed), *wire)
		return 0
	}
	if manifestErr != nil && len(computed) > 0 {
		// Wire types exist but no golden manifest to hold them to.
		fmt.Fprintf(stderr, "leastvet: %v\nleastvet: regenerate with -write-wire (make wire-baseline)\n", manifestErr)
		return 2
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	for _, d := range diags {
		fmt.Fprintln(stdout, relativize(d, *dir))
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "leastvet: %d finding(s)\n", len(diags))
		return 1
	}
	fmt.Fprintf(stdout, "leastvet: OK — %d packages clean\n", len(mod.paths))
	return 0
}

// selectAnalyzers resolves the -only list against the full suite.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	all := analysis.All()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, analyzerNames(all))
		}
		out = append(out, a)
	}
	return out, nil
}

func applicableAnalyzers(suite []*analysis.Analyzer, pkgPath string) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, a := range suite {
		if a.Applies == nil || a.Applies(pkgPath) {
			out = append(out, a)
		}
	}
	return out
}

func analyzerNames(as []*analysis.Analyzer) string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return strings.Join(names, ",")
}

// pkgSources is the parsed source of one module package directory,
// split into the package proper and its in-package test files.
type pkgSources struct {
	name      string // package name (non-test)
	files     []*ast.File
	testFiles []*ast.File // same-package _test.go files; external foo_test packages are out of scope
}

// module holds the whole parsed module plus the type-checking
// machinery. It is itself the types.Importer for "repro/..." paths, so
// intra-module imports resolve to the same checked packages; stdlib
// imports delegate to the shared source importer.
type module struct {
	fset       *token.FileSet
	dir        string
	path       string   // module path from go.mod
	paths      []string // sorted import paths of all packages
	srcs       map[string]*pkgSources
	deprecated map[string]bool

	std   types.Importer            // stdlib source importer
	cache map[string]*types.Package // pure packages (no test files), for imports
}

// loadModule parses every package under dir and pre-scans the ASTs for
// "Deprecated:" markers. Nothing is type-checked yet.
func loadModule(dir string) (*module, error) {
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer type-checks stdlib from GOROOT sources; with
	// cgo enabled packages like net would need C. Pure-Go variants exist
	// for everything this module touches.
	build.Default.CgoEnabled = false

	m := &module{
		fset:       token.NewFileSet(),
		dir:        dir,
		path:       modPath,
		srcs:       make(map[string]*pkgSources),
		deprecated: make(map[string]bool),
		cache:      make(map[string]*types.Package),
	}
	m.std = importer.ForCompiler(m.fset, "source", nil)

	err = filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		return m.parseDir(p)
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(m.paths)

	for path, src := range m.srcs {
		for _, f := range append(append([]*ast.File(nil), src.files...), src.testFiles...) {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && analysis.IsDeprecated(fd.Doc) {
					m.deprecated[analysis.DeclKey(path, fd)] = true
				}
			}
		}
	}
	return m, nil
}

func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module line", gomod)
}

// parseDir parses the .go files directly in p (non-recursive; the walk
// handles recursion) into m.srcs under the dir's import path.
func (m *module) parseDir(p string) error {
	entries, err := os.ReadDir(p)
	if err != nil {
		return err
	}
	src := &pkgSources{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(m.fset, filepath.Join(p, name), nil, parser.ParseComments)
		if err != nil {
			return err
		}
		pkgName := f.Name.Name
		if strings.HasSuffix(name, "_test.go") {
			if strings.HasSuffix(pkgName, "_test") {
				continue // external test package: not part of the wire/serving surface
			}
			src.testFiles = append(src.testFiles, f)
			continue
		}
		if src.name == "" {
			src.name = pkgName
		} else if src.name != pkgName {
			return fmt.Errorf("%s: mixed package names %s and %s", p, src.name, pkgName)
		}
		src.files = append(src.files, f)
	}
	if src.name == "" {
		return nil // no Go package here
	}
	rel, err := filepath.Rel(m.dir, p)
	if err != nil {
		return err
	}
	path := m.path
	if rel != "." {
		path = m.path + "/" + filepath.ToSlash(rel)
	}
	m.srcs[path] = src
	m.paths = append(m.paths, path)
	return nil
}

// Import implements types.Importer: module paths type-check from the
// parsed sources (pure package only — no test files — so importers see
// exactly what the compiler would), everything else comes from the
// stdlib source importer.
func (m *module) Import(path string) (*types.Package, error) {
	src, ok := m.srcs[path]
	if !ok {
		return m.std.Import(path)
	}
	if pkg, ok := m.cache[path]; ok {
		return pkg, nil
	}
	pkg, err := m.check(path, src.files, nil)
	if err != nil {
		return nil, fmt.Errorf("import %s: %w", path, err)
	}
	m.cache[path] = pkg
	return pkg, nil
}

// checkForAnalysis type-checks path with its in-package test files
// merged — analyzers see the same package the `go test` build does —
// and returns the package, the filled Info and the file list.
func (m *module) checkForAnalysis(path string) (*types.Package, *types.Info, []*ast.File, error) {
	src := m.srcs[path]
	files := append(append([]*ast.File(nil), src.files...), src.testFiles...)
	info := analysis.NewInfo()
	pkg, err := m.check(path, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return pkg, info, files, nil
}

func (m *module) check(path string, files []*ast.File, info *types.Info) (*types.Package, error) {
	var firstErr error
	cfg := types.Config{
		Importer: m,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := cfg.Check(path, m.fset, files, info)
	if firstErr != nil {
		return nil, firstErr
	}
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

// relativize renders one diagnostic with the filename relative to the
// module root, matching compiler output.
func relativize(d analysis.Diagnostic, dir string) string {
	if rel, err := filepath.Rel(dir, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d.String()
}

func readWireManifest(path string) (map[string]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string)
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func writeWireManifest(path string, sigs map[string]string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	b, err := json.MarshalIndent(sigs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
