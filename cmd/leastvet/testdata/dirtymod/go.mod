module dirtymod

go 1.24
