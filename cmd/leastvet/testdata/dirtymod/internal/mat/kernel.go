// Package mat seeds one determinism violation so the smoke test can
// pin leastvet's exit status and diagnostic format.
package mat

import "time"

// Stamp breaks the kernel contract on purpose.
func Stamp() int64 { return time.Now().UnixNano() }
