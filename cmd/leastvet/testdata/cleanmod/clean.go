// Package cleanmod is a known-clean module the leastvet smoke test
// runs the full suite over: every analyzer applies its gate, none may
// report.
package cleanmod

import "cleanmod/internal/mat"

// Sum is deliberately boring serving-surface code.
func Sum(xs []float64) float64 { return mat.Sum(xs) }
