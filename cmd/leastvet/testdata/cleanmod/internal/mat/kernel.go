// Package mat is a miniature kernel package that obeys the
// determinism contract: no clocks, no randomness, slot-indexed
// goroutine destinations.
package mat

import "sync"

// Sum accumulates in slice order — reproducible by construction.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Scale writes each output slot from the goroutine that owns it.
func Scale(out, in []float64, a float64) {
	var wg sync.WaitGroup
	for i := range in {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = a * in[i]
		}(i)
	}
	wg.Wait()
}
