package main

import (
	"strings"
	"testing"
)

func capture(args ...string) (int, string, string) {
	var out, errb strings.Builder
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunParSweep(t *testing.T) {
	// -d shrinks the instance so the smoke test stays fast under -race;
	// the flag path and output shape are what is being checked here.
	code, out, errb := capture("-exp", "par-sweep", "-scale", "ci", "-workers", "1,2", "-d", "2000")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{"== par-sweep", "instance:", "spectral-grad", "sparse-loss", "workers=1", "workers=2", "speedup=", "done in"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunErrorPaths(t *testing.T) {
	if code, _, errb := capture("-exp", "bogus"); code != 2 || !strings.Contains(errb, "unknown experiment") {
		t.Errorf("unknown exp: exit %d, stderr %q", code, errb)
	}
	if code, _, _ := capture("-scale", "bogus"); code != 2 {
		t.Errorf("unknown scale: exit %d, want 2", code)
	}
	if code, _, errb := capture("-workers", "0,2"); code != 2 || !strings.Contains(errb, "-workers") {
		t.Errorf("bad workers: exit %d, stderr %q", code, errb)
	}
	if code, _, _ := capture("-no-such-flag"); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}

func TestParseCounts(t *testing.T) {
	got, err := parseCounts("-workers", "1, 2,8")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("parseCounts = %v, %v", got, err)
	}
	if ws, err := parseCounts("-workers", ""); err != nil || ws != nil {
		t.Fatalf("empty = %v, %v", ws, err)
	}
	for _, bad := range []string{"x", "-1", "1,,2", "0"} {
		if _, err := parseCounts("-workers", bad); err == nil {
			t.Errorf("parseCounts(%q) accepted", bad)
		}
	}
}

func TestRunGemmSweep(t *testing.T) {
	// ci scale keeps the largest product at d=256; the flag path and
	// table shape, not the speedups, are what this smoke test pins.
	code, out, errb := capture("-exp", "gemm-sweep", "-scale", "ci", "-workers", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{"== gemm-sweep", "instance:", "square d=", "speedup=", "fleet", "tasks/s=", "done in"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFleetSweep(t *testing.T) {
	// A 2-task fleet on one worker: the flag path and table shape, not
	// the throughput numbers, are what this smoke test pins.
	code, out, errb := capture("-exp", "fleet-sweep", "-workers", "1", "-batch-sizes", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{"== fleet-sweep", "instance:", "networks/s", "done in"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if code, _, errb := capture("-exp", "fleet-sweep", "-batch-sizes", "0"); code != 2 || !strings.Contains(errb, "-batch-sizes") {
		t.Errorf("bad -batch-sizes: exit %d, stderr %q", code, errb)
	}
}
