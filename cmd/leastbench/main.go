// Command leastbench regenerates the paper's tables and figures.
//
// Usage:
//
//	leastbench -exp all -scale ci
//	leastbench -exp fig4-accuracy -scale full -seed 7
//	leastbench -exp par-sweep -workers 1,2,4,8
//
// Experiments (DESIGN.md §3):
//
// The experiment drivers exercise the same three learners the public
// API registers as least.MethodLEAST / MethodLEASTSP / MethodNOTEARS
// (they call the internal engines directly to reach bench-only knobs
// like trace recording; see DESIGN.md §5 for the method registry).
//
//	fig4-accuracy   F1 / SHD / corr(δ,h) panels of Fig 4 (E1, E2)
//	fig4-time       runtime panel of Fig 4 (E3)
//	fig5            LEAST-SP scalability curves (E4, E10)
//	genes           gene-expression Tables I/III (E5)
//	booking-cases   Table II incident detection (E6)
//	booking-pie     Fig 7 root-cause distribution (E7)
//	movielens-edges Table IV top learned edges (E8)
//	movielens-graph Fig 8 neighbourhood + degree analysis (E9)
//	par-sweep       parallel sparse backend: kernel time vs workers
//	gemm-sweep      dense GEMM: tiled vs reference kernel, batched small-d fleets
//	fleet-sweep     batch fleet learning: networks/sec vs batch size × workers
//	coord-sweep     multi-node fleet: networks/sec vs node count + routing overhead
//	all             everything above in order
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/experiments/fleet"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run drives one leastbench invocation; split from main so the smoke
// tests can exercise the flag paths in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("leastbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment id (see -help)")
	scaleStr := fs.String("scale", "ci", "problem scale: ci or full")
	seed := fs.Int64("seed", 1, "random seed")
	workersStr := fs.String("workers", "", "comma-separated worker counts for par-sweep and fleet-sweep (default 1,2,4,…,GOMAXPROCS)")
	sweepD := fs.Int("d", 0, "par-sweep instance size override (0 = scale default)")
	batchesStr := fs.String("batch-sizes", "", "comma-separated fleet-sweep batch sizes (default by -scale: ci 8,32; full 64,256,1024)")
	nodesStr := fs.String("nodes", "", "comma-separated coord-sweep node counts (default 1,2,4)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	scale, err := experiments.ParseScale(*scaleStr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	workers, err := parseCounts("-workers", *workersStr)
	if err != nil {
		fmt.Fprintln(stderr, "leastbench:", err)
		return 2
	}
	batchSizes, err := parseCounts("-batch-sizes", *batchesStr)
	if err != nil {
		fmt.Fprintln(stderr, "leastbench:", err)
		return 2
	}
	nodeCounts, err := parseCounts("-nodes", *nodesStr)
	if err != nil {
		fmt.Fprintln(stderr, "leastbench:", err)
		return 2
	}

	runExp := func(name string, f func()) {
		fmt.Fprintf(stdout, "== %s (scale=%s, seed=%d) ==\n", name, *scaleStr, *seed)
		t0 := time.Now()
		f()
		fmt.Fprintf(stdout, "-- %s done in %v --\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	all := map[string]func(){
		"fig4-accuracy":   func() { experiments.Fig4Accuracy(scale, *seed, stdout) },
		"fig4-time":       func() { experiments.Fig4Time(scale, *seed, stdout) },
		"fig5":            func() { experiments.Fig5(scale, *seed, stdout) },
		"genes":           func() { experiments.Genes(scale, *seed, stdout) },
		"booking-cases":   func() { experiments.BookingCases(scale, *seed, stdout) },
		"booking-pie":     func() { experiments.BookingPie(scale, *seed, stdout) },
		"movielens-edges": func() { experiments.MovielensEdges(scale, *seed, stdout) },
		"movielens-graph": func() { experiments.MovielensGraph(scale, *seed, stdout) },
		"par-sweep":       func() { experiments.ParSweep(scale, *seed, workers, *sweepD, stdout) },
		"gemm-sweep":      func() { experiments.GemmSweep(scale, *seed, workers, stdout) },
		"fleet-sweep":     func() { fleet.Sweep(scale, *seed, workers, batchSizes, stdout) },
		"coord-sweep":     func() { fleet.CoordSweep(scale, *seed, nodeCounts, stdout) },
	}
	order := []string{
		"fig4-accuracy", "fig4-time", "fig5", "genes",
		"booking-cases", "booking-pie", "movielens-edges", "movielens-graph",
		"par-sweep", "gemm-sweep", "fleet-sweep", "coord-sweep",
	}

	if *exp == "all" {
		for _, name := range order {
			runExp(name, all[name])
		}
		return 0
	}
	f, ok := all[*exp]
	if !ok {
		fmt.Fprintf(stderr, "unknown experiment %q; available: %v\n", *exp, order)
		return 2
	}
	runExp(*exp, f)
	return 0
}

// parseCounts turns "1,2,4" into []int{1, 2, 4}; empty means the
// sweep's default grid.
func parseCounts(flag, s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad %s entry %q (want positive integers)", flag, part)
		}
		out = append(out, n)
	}
	return out, nil
}
