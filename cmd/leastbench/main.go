// Command leastbench regenerates the paper's tables and figures.
//
// Usage:
//
//	leastbench -exp all -scale ci
//	leastbench -exp fig4-accuracy -scale full -seed 7
//
// Experiments (DESIGN.md §3):
//
//	fig4-accuracy   F1 / SHD / corr(δ,h) panels of Fig 4 (E1, E2)
//	fig4-time       runtime panel of Fig 4 (E3)
//	fig5            LEAST-SP scalability curves (E4, E10)
//	genes           gene-expression Tables I/III (E5)
//	booking-cases   Table II incident detection (E6)
//	booking-pie     Fig 7 root-cause distribution (E7)
//	movielens-edges Table IV top learned edges (E8)
//	movielens-graph Fig 8 neighbourhood + degree analysis (E9)
//	all             everything above in order
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -help)")
	scaleStr := flag.String("scale", "ci", "problem scale: ci or full")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	scale, err := experiments.ParseScale(*scaleStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	run := func(name string, f func()) {
		fmt.Printf("== %s (scale=%s, seed=%d) ==\n", name, *scaleStr, *seed)
		t0 := time.Now()
		f()
		fmt.Printf("-- %s done in %v --\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	all := map[string]func(){
		"fig4-accuracy":   func() { experiments.Fig4Accuracy(scale, *seed, os.Stdout) },
		"fig4-time":       func() { experiments.Fig4Time(scale, *seed, os.Stdout) },
		"fig5":            func() { experiments.Fig5(scale, *seed, os.Stdout) },
		"genes":           func() { experiments.Genes(scale, *seed, os.Stdout) },
		"booking-cases":   func() { experiments.BookingCases(scale, *seed, os.Stdout) },
		"booking-pie":     func() { experiments.BookingPie(scale, *seed, os.Stdout) },
		"movielens-edges": func() { experiments.MovielensEdges(scale, *seed, os.Stdout) },
		"movielens-graph": func() { experiments.MovielensGraph(scale, *seed, os.Stdout) },
	}
	order := []string{
		"fig4-accuracy", "fig4-time", "fig5", "genes",
		"booking-cases", "booking-pie", "movielens-edges", "movielens-graph",
	}

	if *exp == "all" {
		for _, name := range order {
			run(name, all[name])
		}
		return
	}
	f, ok := all[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %v\n", *exp, order)
		os.Exit(2)
	}
	run(*exp, f)
}
