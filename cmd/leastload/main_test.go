package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestLoadSmoke runs the generator end-to-end against a self-hosted
// daemon for a short burst with the metrics cross-check on: the run
// must finish cleanly, the /metrics ledger must match the generator's
// own tallies, and the report must carry a positive throughput row in
// the benchjson schema the CI gate consumes.
func TestLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke is a second of wall clock; skipped in -short")
	}
	dir := t.TempDir()
	out := dir + "/load.json"
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-duration", "1s",
		"-query-workers", "4",
		"-seed-jobs", "2",
		"-d", "8", "-n", "60",
		"-batch-tasks", "4", "-batch-d", "5", "-batch-n", "30",
		"-interactive", "0",
		"-check",
		"-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("leastload exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "consistent with generator tallies") {
		t.Fatalf("metrics cross-check did not report consistency:\n%s", stderr.String())
	}

	var rep Report
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report decode: %v\n%s", err, raw)
	}
	var throughput *Benchmark
	for i := range rep.Benchmarks {
		if rep.Benchmarks[i].Name == "LoadQuery/throughput" {
			throughput = &rep.Benchmarks[i]
		}
	}
	if throughput == nil {
		t.Fatalf("no LoadQuery/throughput row in report:\n%s", raw)
	}
	if throughput.Iterations <= 0 || throughput.NsPerOp <= 0 {
		t.Fatalf("degenerate throughput row: %+v", throughput)
	}
}
