// Command leastload is the saturation load generator for leastd — the
// proof that the read side (DESIGN.md §10) serves structural queries
// at four-digit-to-five-digit QPS while the write side is busy
// learning. It drives three mixed workloads against one daemon:
//
//   - query hammer: N workers cycling summary / parents / children /
//     blanket / dsep over a set of seeded finished jobs, plus batch
//     edge-confidence reads — the latency- and QPS-measured stream;
//   - fleet batches: back-to-back POST /v2/batches manifests of small
//     unique learn tasks, keeping the worker pool and the GEMM slot
//     region saturated underneath the queries;
//   - interactive solves: submit-and-wait single jobs, the latency a
//     dashboard user sees while everything else is happening.
//
// With -addr empty (the default) it self-hosts: an in-process manager
// and HTTP server on a loopback listener, so the run needs no running
// daemon and, with -check, can cross-check the daemon's /metrics
// counters against the generator's own tallies — every query the
// generator got an answer to must appear in
// least_query_requests_total, exactly.
//
// With -coord N (self-host only) the same workloads drive a fleet
// instead: N full node stacks behind an in-process leastcoord
// (DESIGN.md §13), every request entering through the coordinator's
// proxy. -check then sums the per-node /metrics ledgers and holds
// them to the generator's tallies plus the coordinator's own routing
// counters — queries forward 1:1, node-admitted batch tasks must
// equal the coordinator's dispatch count (steals included), and jobs
// minted across the fleet must equal routed submissions plus
// dispatched tasks minus node-side dedupe and shedding.
//
// The report is benchjson-compatible JSON (-out), so the nightly gate
// can feed it back through `benchjson -in load.json -baseline ...`:
//
//	leastload -duration 30s -out load.json -check -min-qps 10000
//
// LoadQuery/throughput encodes sustained QPS as ns/op (QPS = 1e9 /
// ns_per_op); LoadQuery/latency-{mean,p50,p90,p99} are per-request
// wall times.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coord"
	"repro/internal/serve"
)

// Benchmark / Report mirror cmd/benchjson's document schema (one
// parsed result per line); leastload emits them directly instead of
// round-tripping through `go test -bench` text.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// tallies is the generator's own ledger, kept so -check can hold the
// daemon's /metrics counters to account. Every field counts completed
// round-trips (a response was read), which is exactly what the
// daemon's middleware counted on its side; transport errors make the
// ledgers incomparable and are tracked separately.
type tallies struct {
	httpResponses   atomic.Int64 // every response read, all routes
	queryResponses  atomic.Int64 // /query/* and /edges responses
	queryErrors     atomic.Int64 // non-200 answers on the query stream
	transportErrors atomic.Int64
	jobsSubmitted   atomic.Int64 // seed + interactive single jobs
	batchesOK       atomic.Int64
	batchTasksSent  atomic.Int64
	batchTasksDone  atomic.Int64
	interactiveDone atomic.Int64
}

type client struct {
	base string
	hc   *http.Client
	t    *tallies

	// base0 is a raw /metrics scrape taken before the run's first
	// tallied request; -check compares counter *deltas* against it, so
	// a daemon that served traffic before this run stays checkable.
	base0 map[string]float64
}

// req does one JSON round-trip, decoding 2xx bodies into out.
func (c *client) req(method, path string, body, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(b)
	}
	httpReq, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		httpReq.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		c.t.transportErrors.Add(1)
		return 0, err
	}
	defer resp.Body.Close()
	c.t.httpResponses.Add(1)
	if out != nil && resp.StatusCode < 300 {
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// queryGet is the hot-path fetch: drain and discard, count, return the
// status. No JSON decode — the measured cost is the server's.
func (c *client) queryGet(path string) (int, error) {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		c.t.transportErrors.Add(1)
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	c.t.httpResponses.Add(1)
	c.t.queryResponses.Add(1)
	return resp.StatusCode, nil
}

// chainSamples draws n observations of the d-variable linear chain
// X0 → X1 → ... → X(d−1) — data whose learned structure is a known
// DAG, so seeded jobs answer every query verb including dsep.
func chainSamples(rng *rand.Rand, n, d int) [][]float64 {
	x := make([][]float64, n)
	for i := range x {
		row := make([]float64, d)
		row[0] = rng.NormFloat64()
		for j := 1; j < d; j++ {
			row[j] = 0.8*row[j-1] + 0.5*rng.NormFloat64()
		}
		x[i] = row
	}
	return x
}

func main() { os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr)) }

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("leastload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "base URL of a running leastd (e.g. http://127.0.0.1:8080); empty self-hosts an in-process daemon")
	duration := fs.Duration("duration", 15*time.Second, "measured load window")
	workers := fs.Int("query-workers", 4, "concurrent query-stream goroutines")
	seedJobs := fs.Int("seed-jobs", 3, "finished jobs to seed as query targets")
	dim := fs.Int("d", 24, "variables per seeded job")
	samples := fs.Int("n", 160, "observations per seeded job")
	tau := fs.Float64("tau", 0.3, "edge threshold for every query")
	interactive := fs.Int("interactive", 1, "concurrent submit-and-wait job loops (0 disables)")
	batchTasks := fs.Int("batch-tasks", 24, "tasks per fleet batch manifest (0 disables the batch loop)")
	batchDim := fs.Int("batch-d", 8, "variables per fleet batch task")
	batchSamples := fs.Int("batch-n", 48, "observations per fleet batch task")
	pool := fs.Int("pool", 2, "self-host worker pool size, per node with -coord (ignored with -addr)")
	coordN := fs.Int("coord", 0, "self-host this many leastd nodes behind an in-process coordinator (0 = single daemon; ignored with -addr)")
	journalDir := fs.String("journal-dir", "", "self-host with a write-ahead journal in this directory, reporting its overhead (ignored with -addr)")
	seed := fs.Int64("seed", 1, "RNG seed for synthetic data")
	out := fs.String("out", "", "write the benchjson-compatible report here (default: stdout)")
	check := fs.Bool("check", false, "after quiescing, cross-check /metrics counters against the generator's tallies")
	minQPS := fs.Float64("min-qps", 0, "fail the run when sustained query QPS lands below this")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if *workers < 1 || *seedJobs < 1 {
		fmt.Fprintln(stderr, "leastload: -query-workers and -seed-jobs must be at least 1")
		return 2
	}

	// A bare host:port is the natural thing to paste from `leastd
	// listening on ...`; default the scheme rather than erroring on
	// the colon.
	if *addr != "" && !strings.Contains(*addr, "://") {
		*addr = "http://" + *addr
	}
	t := &tallies{}
	c := &client{
		base: strings.TrimRight(*addr, "/"),
		hc: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        *workers * 4,
			MaxIdleConnsPerHost: *workers * 4,
		}},
		t: t,
	}

	// Self-host: the full daemon stack — manager, API handler,
	// loopback TCP — in-process. Going through real HTTP keeps the
	// measurement honest; going through a private listener keeps the
	// -check ledgers exact (nobody else can touch the counters).
	var mgr *serve.Manager
	var coordC *coord.Coordinator
	var nodeBases []string
	if *addr == "" && *coordN > 0 {
		// Fleet self-host: N full node stacks behind one in-process
		// coordinator; every request enters through the proxy, so the
		// measured latencies include the routing hop.
		if *journalDir != "" {
			fmt.Fprintln(stderr, "leastload: -journal-dir is ignored with -coord (fleet nodes run unjournaled)")
		}
		var members []coord.NodeConfig
		for i := 0; i < *coordN; i++ {
			m, err := serve.OpenManager(serve.Config{
				MaxConcurrent: *pool, QueueDepth: 1024, MaxHistory: 1 << 20,
			})
			if err != nil {
				fmt.Fprintln(stderr, "leastload:", err)
				return 1
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fmt.Fprintln(stderr, "leastload:", err)
				return 1
			}
			srv := &http.Server{Handler: serve.NewAPI(m).Handler()}
			go func() { _ = srv.Serve(ln) }()
			defer func() {
				sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				m.Shutdown(sctx)
				_ = srv.Close()
			}()
			base := "http://" + ln.Addr().String()
			nodeBases = append(nodeBases, base)
			members = append(members, coord.NodeConfig{Name: fmt.Sprintf("n%d", i), URL: base})
		}
		var err error
		coordC, err = coord.New(coord.Config{
			Nodes:       members,
			HealthEvery: 250 * time.Millisecond,
			GossipEvery: 250 * time.Millisecond,
			StealEvery:  100 * time.Millisecond,
			PollEvery:   10 * time.Millisecond,
		})
		if err != nil {
			fmt.Fprintln(stderr, "leastload:", err)
			return 1
		}
		coordC.CheckHealth()
		coordC.SyncGossip()
		cln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(stderr, "leastload:", err)
			return 1
		}
		csrv := &http.Server{Handler: coordC.Handler()}
		go func() { _ = csrv.Serve(cln) }()
		defer func() {
			_ = csrv.Close()
			sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			coordC.Shutdown(sctx)
		}()
		c.base = "http://" + cln.Addr().String()
		fmt.Fprintf(stderr, "leastload: self-hosting a %d-node fleet behind %s (pool=%d per node)\n",
			*coordN, c.base, *pool)
	} else if *addr == "" {
		// MaxHistory must outlast the run's own fleet churn: every batch
		// task mints a job, and history eviction past the bound would
		// (correctly) 404 the seeded query targets mid-run.
		var err error
		mgr, err = serve.OpenManager(serve.Config{
			MaxConcurrent: *pool, QueueDepth: 1024, MaxHistory: 1 << 20,
			JournalDir: *journalDir,
		})
		if err != nil {
			fmt.Fprintln(stderr, "leastload:", err)
			return 1
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(stderr, "leastload:", err)
			return 1
		}
		srv := &http.Server{Handler: serve.NewAPI(mgr).Handler()}
		go func() { _ = srv.Serve(ln) }()
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			mgr.Shutdown(sctx)
			_ = srv.Close()
		}()
		c.base = "http://" + ln.Addr().String()
		fmt.Fprintf(stderr, "leastload: self-hosting on %s (pool=%d)\n", c.base, *pool)
		if *journalDir != "" {
			fmt.Fprintf(stderr, "leastload: journaling to %s\n", *journalDir)
		}
	} else {
		if *check {
			fmt.Fprintln(stderr, "leastload: -check against an external daemon assumes no concurrent traffic during the run")
		}
		if *journalDir != "" {
			fmt.Fprintln(stderr, "leastload: -journal-dir is ignored with -addr (configure the daemon's own -journal-dir instead)")
		}
		if *coordN > 0 {
			fmt.Fprintln(stderr, "leastload: -coord is ignored with -addr (point -addr at a running leastcoord instead)")
		}
	}

	// The baseline scrape is deliberately NOT tallied: the daemon
	// counts it inside the baseline value itself (the middleware
	// increments before the handler renders), so every tallied request
	// after this point is exactly the counter delta. The fleet check
	// needs no baseline — its nodes are freshly minted in-process, so
	// their counters start from zero.
	if *check && coordC == nil {
		resp, err := c.hc.Get(c.base + "/metrics")
		if err != nil {
			fmt.Fprintln(stderr, "leastload: baseline metrics scrape:", err)
			return 1
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != 200 {
			fmt.Fprintf(stderr, "leastload: baseline metrics scrape: code %d err %v\n", resp.StatusCode, err)
			return 1
		}
		c.base0 = parseMetrics(string(body))
	}

	// Seed phase: learn the query targets to completion.
	rng := rand.New(rand.NewSource(*seed))
	jobIDs, dsepOK := make([]string, 0, *seedJobs), make([]bool, 0, *seedJobs)
	for i := 0; i < *seedJobs; i++ {
		id, err := c.submitAndWait(chainSamples(rng, *samples, *dim), map[string]any{"max_outer": 5}, 2*time.Minute)
		if err != nil {
			fmt.Fprintln(stderr, "leastload: seeding:", err)
			return 1
		}
		var sum struct {
			D     int  `json:"d"`
			Edges int  `json:"edges"`
			IsDAG bool `json:"is_dag"`
		}
		code, err := c.req("GET", fmt.Sprintf("/v2/jobs/%s/query/summary?tau=%g", id, *tau), nil, &sum)
		t.queryResponses.Add(1) // the probe hits a query route; keep the ledger exact
		if err != nil || code != 200 {
			fmt.Fprintf(stderr, "leastload: probing %s: code %d err %v\n", id, code, err)
			return 1
		}
		fmt.Fprintf(stderr, "leastload: seeded %s (d=%d edges=%d dag=%v)\n", id, sum.D, sum.Edges, sum.IsDAG)
		jobIDs = append(jobIDs, id)
		dsepOK = append(dsepOK, sum.IsDAG)
	}
	t.jobsSubmitted.Add(int64(*seedJobs))

	urls := queryURLs(jobIDs, dsepOK, *dim, *tau)

	// Load phase.
	loadStart := time.Now()
	stopAt := loadStart.Add(*duration)
	lats := make([][]int64, *workers)
	var queryWG sync.WaitGroup
	for w := 0; w < *workers; w++ {
		w := w
		queryWG.Add(1)
		go func() {
			defer queryWG.Done()
			lat := make([]int64, 0, 1<<16)
			for i := w; time.Now().Before(stopAt); i++ {
				u := urls[i%len(urls)]
				t0 := time.Now()
				code, err := c.queryGet(u)
				if err != nil || code != 200 {
					t.queryErrors.Add(1)
					continue
				}
				lat = append(lat, int64(time.Since(t0)))
			}
			lats[w] = lat
		}()
	}

	var bgWG sync.WaitGroup
	if *batchTasks > 0 {
		bgWG.Add(1)
		brng := rand.New(rand.NewSource(*seed + 1000))
		go func() {
			defer bgWG.Done()
			// The cross-task edge view is a node-local aggregation the
			// coordinator deliberately does not replicate (DESIGN.md §13),
			// so the fleet run skips that probe.
			c.batchLoop(stderr, brng, stopAt, *batchTasks, *batchSamples, *batchDim, *tau, coordC == nil)
		}()
	}
	for k := 0; k < *interactive; k++ {
		bgWG.Add(1)
		irng := rand.New(rand.NewSource(*seed + 2000 + int64(k)))
		go func() {
			defer bgWG.Done()
			c.interactiveLoop(irng, stopAt, *samples, *dim)
		}()
	}

	queryWG.Wait()
	elapsed := time.Since(loadStart)
	bgWG.Wait() // quiesce: outstanding batches and solves run to terminal

	// Fold the latency series.
	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	queries := int64(len(all))
	if queries == 0 {
		fmt.Fprintln(stderr, "leastload: no successful queries — nothing to report")
		return 1
	}
	var sum int64
	for _, v := range all {
		sum += v
	}
	pct := func(p float64) float64 {
		i := int(p * float64(len(all)-1))
		return float64(all[i])
	}
	qps := float64(queries) / elapsed.Seconds()
	fmt.Fprintf(stderr, "leastload: %d queries in %.1fs = %.0f q/s (mean %.2fms p50 %.2fms p90 %.2fms p99 %.2fms), %d errors\n",
		queries, elapsed.Seconds(), qps,
		float64(sum)/float64(queries)/1e6, pct(0.50)/1e6, pct(0.90)/1e6, pct(0.99)/1e6,
		t.queryErrors.Load())
	fmt.Fprintf(stderr, "leastload: background: %d batches (%d/%d tasks done), %d interactive solves\n",
		t.batchesOK.Load(), t.batchTasksDone.Load(), t.batchTasksSent.Load(), t.interactiveDone.Load())

	rep := Report{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		Pkg: "repro/cmd/leastload", CPU: fmt.Sprintf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0)),
		Benchmarks: []Benchmark{
			{Name: "LoadQuery/throughput", Iterations: queries, NsPerOp: float64(elapsed.Nanoseconds()) / float64(queries)},
			{Name: "LoadQuery/latency-mean", Iterations: queries, NsPerOp: float64(sum) / float64(queries)},
			{Name: "LoadQuery/latency-p50", Iterations: queries, NsPerOp: pct(0.50)},
			{Name: "LoadQuery/latency-p90", Iterations: queries, NsPerOp: pct(0.90)},
			{Name: "LoadQuery/latency-p99", Iterations: queries, NsPerOp: pct(0.99)},
		},
	}
	if done := t.batchTasksDone.Load(); done > 0 {
		rep.Benchmarks = append(rep.Benchmarks, Benchmark{
			Name: "LoadBatch/tasks", Iterations: done,
			NsPerOp: float64(elapsed.Nanoseconds()) / float64(done),
		})
	}
	if done := t.interactiveDone.Load(); done > 0 {
		rep.Benchmarks = append(rep.Benchmarks, Benchmark{
			Name: "LoadSolve/interactive", Iterations: done,
			NsPerOp: float64(elapsed.Nanoseconds()) / float64(done),
		})
	}
	// Journal overhead, self-host only: the write amplification the WAL
	// added to this run. Compare LoadQuery/* against a run without
	// -journal-dir to hold the durability tax to its budget (the ISSUE
	// acceptance allows ≤10% on the -check workload).
	if mgr != nil {
		if js, ok := mgr.JournalStats(); ok && js.Records > 0 {
			fmt.Fprintf(stderr, "leastload: journal overhead: %d records, %d bytes (%.0f B/record), %d fsyncs\n",
				js.Records, js.Bytes, float64(js.Bytes)/float64(js.Records), js.Fsyncs)
			rep.Benchmarks = append(rep.Benchmarks,
				Benchmark{Name: "LoadJournal/appends", Iterations: js.Records,
					NsPerOp: float64(elapsed.Nanoseconds()) / float64(js.Records)},
				Benchmark{Name: "LoadJournal/bytes-per-record", Iterations: js.Records,
					NsPerOp: float64(js.Bytes) / float64(js.Records)})
		}
	}
	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "leastload:", err)
		return 1
	}
	doc = append(doc, '\n')
	if *out == "" {
		_, err = stdout.Write(doc)
	} else {
		err = os.WriteFile(*out, doc, 0o644)
	}
	if err != nil {
		fmt.Fprintln(stderr, "leastload:", err)
		return 1
	}

	rc := 0
	if *check {
		ok := false
		if coordC != nil {
			ok = c.checkClusterMetrics(stderr, nodeBases, coordC.Metrics())
		} else {
			ok = c.checkMetrics(stderr)
		}
		if !ok {
			rc = 1
		}
	}
	if t.queryErrors.Load() > 0 {
		fmt.Fprintf(stderr, "leastload: FAIL: %d query errors\n", t.queryErrors.Load())
		rc = 1
	}
	if *minQPS > 0 && qps < *minQPS {
		fmt.Fprintf(stderr, "leastload: FAIL: %.0f q/s below the -min-qps %.0f floor\n", qps, *minQPS)
		rc = 1
	}
	return rc
}

// queryURLs pre-renders the rotation of query requests so the hot loop
// never formats strings. Every verb appears for every seeded job;
// dsep only where the compiled graph is a DAG at this tau.
func queryURLs(jobIDs []string, dsepOK []bool, d int, tau float64) []string {
	var urls []string
	taus := fmt.Sprintf("?tau=%g", tau)
	for k, id := range jobIDs {
		base := "/v2/jobs/" + id
		urls = append(urls, base+"/query/summary"+taus)
		for _, node := range []int{0, d / 2, d - 1} {
			ns := strconv.Itoa(node)
			urls = append(urls,
				base+"/query/parents"+taus+"&node="+ns,
				base+"/query/children"+taus+"&node="+ns,
				base+"/query/blanket"+taus+"&node="+ns)
		}
		if dsepOK[k] {
			urls = append(urls,
				fmt.Sprintf("%s/query/dsep%s&x=0&y=%d", base, taus, d-1),
				fmt.Sprintf("%s/query/dsep%s&x=0&y=%d&z=%d", base, taus, d-1, d/2))
		}
	}
	return urls
}

// submitAndWait posts one inline job and polls it to done.
func (c *client) submitAndWait(samples [][]float64, spec map[string]any, timeout time.Duration) (string, error) {
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	code, err := c.req("POST", "/v2/jobs", map[string]any{"samples": samples, "spec": spec}, &st)
	if err != nil {
		return "", err
	}
	if code != http.StatusOK && code != http.StatusAccepted {
		return "", fmt.Errorf("submit: HTTP %d", code)
	}
	deadline := time.Now().Add(timeout)
	for st.State != "done" {
		if st.State == "failed" || st.State == "cancelled" {
			return "", fmt.Errorf("job %s: %s (%s)", st.ID, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("job %s: still %s after %s", st.ID, st.State, timeout)
		}
		time.Sleep(5 * time.Millisecond)
		if _, err := c.req("GET", "/v2/jobs/"+st.ID, nil, &st); err != nil {
			return "", err
		}
	}
	return st.ID, nil
}

// batchLoop submits fleet manifests back to back until the window
// closes, each a set of unique small-d learns, waiting each batch to a
// terminal state (the last one past the window — quiesce before
// -check). After each batch it reads the cross-task edge-confidence
// view, exercising the aggregation path under load.
func (c *client) batchLoop(stderr io.Writer, rng *rand.Rand, stopAt time.Time, tasks, n, d int, tau float64, edges bool) {
	for time.Now().Before(stopAt) {
		manifest := make([]map[string]any, tasks)
		for i := range manifest {
			manifest[i] = map[string]any{
				"id":      fmt.Sprintf("t%d", i),
				"samples": chainSamples(rng, n, d),
				"spec":    map[string]any{"max_outer": 2, "max_inner": 8},
			}
		}
		var bst struct {
			ID    string `json:"id"`
			State string `json:"state"`
			Done  int    `json:"done"`
		}
		code, err := c.req("POST", "/v2/batches", map[string]any{"tasks": manifest}, &bst)
		if err != nil || code != http.StatusAccepted && code != http.StatusOK {
			fmt.Fprintf(stderr, "leastload: batch submit: code %d err %v\n", code, err)
			return
		}
		c.t.batchTasksSent.Add(int64(tasks))
		for bst.State == string(serve.BatchRunning) {
			time.Sleep(20 * time.Millisecond)
			if _, err := c.req("GET", "/v2/batches/"+bst.ID, nil, &bst); err != nil {
				return
			}
		}
		c.t.batchesOK.Add(1)
		c.t.batchTasksDone.Add(int64(bst.Done))
		if edges {
			if code, err := c.queryGet(fmt.Sprintf("/v2/batches/%s/edges?tau=%g&limit=10", bst.ID, tau)); err != nil || code != 200 {
				c.t.queryErrors.Add(1)
			}
		}
	}
}

// interactiveLoop is one simulated dashboard user: submit, wait, loop.
func (c *client) interactiveLoop(rng *rand.Rand, stopAt time.Time, n, d int) {
	for time.Now().Before(stopAt) {
		if _, err := c.submitAndWait(chainSamples(rng, n, d), map[string]any{"max_outer": 3}, 2*time.Minute); err != nil {
			return
		}
		c.t.jobsSubmitted.Add(1)
		c.t.interactiveDone.Add(1)
	}
}

// checkMetrics scrapes /metrics and holds the daemon's ledgers to the
// generator's: every counted round-trip must appear, exactly, and the
// quiesced daemon must show nothing queued or running. The scrape
// itself is counted by the daemon's middleware before rendering, and
// by the generator when the response lands — both sides include it.
func (c *client) checkMetrics(stderr io.Writer) bool {
	resp, err := c.hc.Get(c.base + "/metrics")
	if err != nil {
		fmt.Fprintln(stderr, "leastload: metrics scrape:", err)
		return false
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	c.t.httpResponses.Add(1)
	if err != nil || resp.StatusCode != 200 {
		fmt.Fprintf(stderr, "leastload: metrics scrape: code %d err %v\n", resp.StatusCode, err)
		return false
	}
	if n := c.t.transportErrors.Load(); n > 0 {
		fmt.Fprintf(stderr, "leastload: %d transport errors — counter cross-check skipped (ledgers incomparable)\n", n)
		return true
	}
	m := parseMetrics(string(body))
	ok := true
	// Every comparison is a delta against the pre-run baseline scrape,
	// so counters accumulated before this run cancel out.
	delta := func(name string) (int64, bool) {
		got, present := m[name]
		return int64(got - c.base0[name]), present
	}
	expect := func(name string, want int64) {
		got, present := delta(name)
		if !present || got != want {
			fmt.Fprintf(stderr, "leastload: FAIL: %s moved by %d, generator tallied %d\n", name, got, want)
			ok = false
		}
	}
	expect("least_http_requests_total", c.t.httpResponses.Load())
	expect("least_query_requests_total", c.t.queryResponses.Load())
	expect("least_batches_submitted_total", c.t.batchesOK.Load())
	expect("least_batch_tasks_admitted_total", c.t.batchTasksSent.Load())
	// Jobs minted = single submissions + batch tasks that neither
	// joined an in-flight twin nor were shed (cache-answered tasks DO
	// mint a born-done job). The daemon's own counters supply the
	// dedup/shed terms, so this is a cross-ledger identity, not a
	// tautology.
	deduped, _ := delta("least_batch_tasks_deduped_total")
	shed, _ := delta("least_batch_tasks_shed_total")
	expect("least_jobs_submitted_total",
		c.t.jobsSubmitted.Load()+c.t.batchTasksSent.Load()-deduped-shed)
	expect("least_jobs_running", 0)
	expect("least_jobs_queued", 0)
	if ok {
		fmt.Fprintln(stderr, "leastload: /metrics counters consistent with generator tallies")
	}
	return ok
}

// checkClusterMetrics is the fleet-mode ledger check: it scrapes every
// node's /metrics directly (bypassing the coordinator — these scrapes
// must not enter the ledgers), sums them, and holds the fleet to the
// generator's tallies plus the coordinator's routing counters:
//
//   - queries forward 1:1, so the summed query counter equals the
//     generator's query tally exactly;
//   - node-admitted batch tasks equal the coordinator's dispatch
//     count (steals and redispatches are re-admissions on both sides);
//   - jobs minted fleet-wide equal routed interactive submissions plus
//     dispatched tasks minus the nodes' own dedupe and shedding;
//   - routed + singleflight-joined submissions equal the generator's
//     submissions, and split manifests equal its completed batches;
//   - the quiesced fleet shows nothing queued or running anywhere.
//
// Summed node HTTP totals are deliberately unchecked: the coordinator
// generates its own traffic (health probes, gossip, sub-batch polls)
// that the generator cannot see.
func (c *client) checkClusterMetrics(stderr io.Writer, nodes []string, cm *coord.Metrics) bool {
	if n := c.t.transportErrors.Load(); n > 0 {
		fmt.Fprintf(stderr, "leastload: %d transport errors — counter cross-check skipped (ledgers incomparable)\n", n)
		return true
	}
	sum := make(map[string]float64)
	for _, base := range nodes {
		resp, err := c.hc.Get(base + "/metrics")
		if err != nil {
			fmt.Fprintln(stderr, "leastload: node metrics scrape:", err)
			return false
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != 200 {
			fmt.Fprintf(stderr, "leastload: node metrics scrape: code %d err %v\n", resp.StatusCode, err)
			return false
		}
		for k, v := range parseMetrics(string(body)) {
			sum[k] += v
		}
	}
	ok := true
	expect := func(name string, want int64) {
		if got := int64(sum[name]); got != want {
			fmt.Fprintf(stderr, "leastload: FAIL: fleet Σ %s = %d, want %d\n", name, got, want)
			ok = false
		}
	}
	expect("least_query_requests_total", c.t.queryResponses.Load())
	expect("least_batch_tasks_admitted_total", cm.TasksDispatched.Load())
	expect("least_jobs_submitted_total",
		cm.JobsRouted.Load()+cm.TasksDispatched.Load()-
			int64(sum["least_batch_tasks_deduped_total"])-int64(sum["least_batch_tasks_shed_total"]))
	expect("least_jobs_running", 0)
	expect("least_jobs_queued", 0)
	if got, want := cm.JobsRouted.Load()+cm.SingleflightJoins.Load(), c.t.jobsSubmitted.Load(); got != want {
		fmt.Fprintf(stderr, "leastload: FAIL: coordinator routed+joined %d submissions, generator sent %d\n", got, want)
		ok = false
	}
	if got, want := cm.BatchesSplit.Load(), c.t.batchesOK.Load(); got != want {
		fmt.Fprintf(stderr, "leastload: FAIL: coordinator split %d manifests, generator completed %d\n", got, want)
		ok = false
	}
	if ok {
		fmt.Fprintf(stderr, "leastload: fleet /metrics ledgers (%d nodes + coordinator) consistent with generator tallies\n", len(nodes))
	}
	return ok
}

// parseMetrics reads the Prometheus text exposition into name → value.
func parseMetrics(body string) map[string]float64 {
	m := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
			m[fields[0]] = v
		}
	}
	return m
}
