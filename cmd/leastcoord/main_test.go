package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
)

// syncBuffer is a concurrency-safe writer the coordinator logs into
// while the test polls it for the bound address.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

func TestRunFlagErrors(t *testing.T) {
	ctx := context.Background()
	var out, errb syncBuffer
	if code := run(ctx, []string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code := run(ctx, nil, &out, &errb); code != 2 {
		t.Errorf("no nodes and no journal: exit %d, want 2", code)
	}
	if code := run(ctx, []string{"-node", "missing-equals"}, &out, &errb); code != 2 {
		t.Errorf("malformed -node: exit %d, want 2", code)
	}
	if code := run(ctx, []string{"-node", "a=http://127.0.0.1:1", "-addr", "256.256.256.256:1"}, &out, &errb); code != 1 {
		t.Errorf("unlistenable addr: exit %d, want 1", code)
	}
}

var listenRE = regexp.MustCompile(`listening on ([^ ]+)`)

// TestCoordinatorSmoke boots two real node stacks, runs the
// coordinator binary's run() against them, routes one interactive job
// end to end through the public surface, checks the cluster routes,
// and shuts down gracefully.
func TestCoordinatorSmoke(t *testing.T) {
	var nodes []*httptest.Server
	for i := 0; i < 2; i++ {
		mgr := serve.NewManager(serve.Config{MaxConcurrent: 1, QueueDepth: 64, MaxHistory: 1 << 10})
		srv := httptest.NewServer(serve.NewAPI(mgr).Handler())
		nodes = append(nodes, srv)
		defer srv.Close()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			mgr.Shutdown(ctx)
			cancel()
		}()
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errb syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-node", "a=" + nodes[0].URL,
			"-node", "b=" + nodes[1].URL,
			"-grace", "5s",
		}, &out, &errb)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := listenRE.FindStringSubmatch(errb.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never listened; stderr:\n%s", errb.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	base := "http://" + addr

	// Aggregated health: both nodes alive.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status string `json:"status"`
		Nodes  []struct {
			Name  string `json:"name"`
			Alive bool   `json:"alive"`
		} `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.Status != "ok" || len(hz.Nodes) != 2 {
		t.Fatalf("healthz: %+v", hz)
	}

	// One interactive job end to end: composite ID, terminal done.
	body := []byte(`{"samples": [[0.1, 1.2, -0.3], [1.1, 0.2, 0.4], [-0.7, 0.9, 1.3], [0.5, -1.1, 0.8], [1.4, 0.3, -0.6], [-0.2, 0.7, 1.0]]}`)
	r2, err := http.Post(base+"/v2/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(r2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if !strings.Contains(st.ID, ".") {
		t.Fatalf("job id %q is not composite", st.ID)
	}
	for st.State != "done" {
		if st.State == "failed" || st.State == "cancelled" {
			t.Fatalf("job: %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
		r3, err := http.Get(base + "/v2/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r3.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r3.Body.Close()
	}

	// /metrics speaks the least_coord_* exposition.
	r4, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(r4.Body)
	r4.Body.Close()
	if !strings.Contains(string(mb), "least_coord_jobs_routed_total") {
		t.Fatalf("metrics exposition missing coordinator counters:\n%.400s", mb)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run exited %d; stderr:\n%s", code, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("coordinator did not shut down; stderr:\n%s", errb.String())
	}
	if !strings.Contains(errb.String(), "shutting down") {
		t.Errorf("no graceful-shutdown log; stderr:\n%s", errb.String())
	}
}
