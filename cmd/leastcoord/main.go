// Command leastcoord fronts N leastd nodes as one fleet (DESIGN.md
// §13) — the multi-node half of the paper's §VI deployment scale,
// where tens of thousands of structure learns a day outgrow a single
// box. It speaks the same v2 wire surface as one leastd, so clients
// cannot tell a node from a cluster:
//
//   - interactive jobs route by rendezvous hashing on the dataset
//     fingerprint (cache + dataset affinity), with a gossiped
//     cache-index redirect when another node already holds the answer
//     and a coordinator-side singleflight that joins identical
//     concurrent submissions onto one in-flight solve;
//   - batch manifests split into per-node sub-manifests by task
//     fingerprint (identical tasks colocate, so in-node dedupe is
//     cluster-wide dedupe), idle nodes steal pending lane tails from
//     loaded peers, and the coordinator folds the per-node task tables
//     back into one row table under the original manifest indices;
//   - membership is health-checked with typed degradation: a dead
//     node's keyspace reassigns, its interactive jobs fail with the
//     typed "restart" code, its batch rows redispatch to survivors
//     (bit-identical by determinism), and /healthz + /metrics
//     aggregate the per-node blocks.
//
// Usage:
//
//	leastcoord -addr :9090 \
//	  -node a=http://127.0.0.1:8081 \
//	  -node b=http://127.0.0.1:8082 \
//	  -node c=http://127.0.0.1:8083
//
// Cluster-wide identifiers are composite "<node>.<localid>" — job,
// dataset and sub-resource routes parse them back to the owning node.
// Node names must not contain "." or "/".
//
// -journal-dir makes membership durable: member adds/drops and
// routing-epoch bumps are journaled (fsync per append — membership
// changes are rare and must survive an immediate crash), and a
// restarted coordinator re-adopts the last known fleet. Work is
// deliberately not journaled here: jobs and batches live on the nodes,
// which have their own journals (DESIGN.md §11).
//
// Extra routes beyond the v2 surface:
//
//	GET    /cluster/nodes         membership + per-node health blocks
//	POST   /cluster/nodes         admit {"Name": "...", "URL": "..."}
//	DELETE /cluster/nodes/{name}  retire a member (keyspace reassigns)
//	GET    /healthz               aggregated fleet health
//	GET    /metrics               least_coord_* exposition
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/coord"
)

// nodeFlags collects repeated -node name=url flags.
type nodeFlags []coord.NodeConfig

func (nf *nodeFlags) String() string {
	parts := make([]string, len(*nf))
	for i, n := range *nf {
		parts[i] = n.Name + "=" + n.URL
	}
	return strings.Join(parts, ",")
}

func (nf *nodeFlags) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("want name=url, got %q", v)
	}
	*nf = append(*nf, coord.NodeConfig{Name: name, URL: url})
	return nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run drives one leastcoord invocation; split from main so the smoke
// tests can exercise the coordinator in-process.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("leastcoord", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var nodes nodeFlags
	fs.Var(&nodes, "node", "cluster member as name=url (repeatable)")
	addr := fs.String("addr", ":9090", "listen address")
	healthEvery := fs.Duration("health-every", 500*time.Millisecond, "health-check cadence")
	failAfter := fs.Int("fail-after", 2, "consecutive health failures before a node is declared dead")
	gossipEvery := fs.Duration("gossip-every", 500*time.Millisecond, "cache-digest gossip cadence")
	stealEvery := fs.Duration("steal-every", 250*time.Millisecond, "work-steal skew scan cadence")
	stealMin := fs.Int("steal-min", 4, "minimum pending rows on the loaded node before stealing")
	pollEvery := fs.Duration("poll-every", 25*time.Millisecond, "sub-batch progress poll cadence")
	journalDir := fs.String("journal-dir", "", "membership journal directory (empty disables; see DESIGN.md §13)")
	grace := fs.Duration("grace", 10*time.Second, "shutdown grace period")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if len(nodes) == 0 && *journalDir == "" {
		fmt.Fprintln(stderr, "leastcoord: at least one -node name=url is required (or -journal-dir with prior membership)")
		return 2
	}

	c, err := coord.New(coord.Config{
		Nodes:       nodes,
		HealthEvery: *healthEvery,
		FailAfter:   *failAfter,
		GossipEvery: *gossipEvery,
		StealEvery:  *stealEvery,
		StealMin:    *stealMin,
		PollEvery:   *pollEvery,
		JournalDir:  *journalDir,
	})
	if err != nil {
		fmt.Fprintln(stderr, "leastcoord:", err)
		return 1
	}

	// Verify the fleet once before serving, so the first routed request
	// does not eat the first health sweep's latency.
	c.CheckHealth()
	c.SyncGossip()

	srv := &http.Server{Handler: c.Handler()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "leastcoord:", err)
		shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		c.Shutdown(shutCtx)
		return 1
	}
	fmt.Fprintf(stderr, "leastcoord listening on %s (%d nodes)\n", ln.Addr(), len(nodes))

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(stderr, "leastcoord: shutting down")
		httpCtx, cancelHTTP := context.WithTimeout(context.Background(), *grace)
		defer cancelHTTP()
		if err := srv.Shutdown(httpCtx); err != nil {
			fmt.Fprintln(stderr, "leastcoord: http shutdown:", err)
		}
		<-errc
		shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		c.Shutdown(shutCtx)
		return 0
	case err := <-errc:
		fmt.Fprintln(stderr, "leastcoord:", err)
		shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		c.Shutdown(shutCtx)
		return 1
	}
}
