package least

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestParseMethod(t *testing.T) {
	cases := []struct {
		in   string
		want Method
		ok   bool
	}{
		{"", MethodLEAST, true},
		{"least", MethodLEAST, true},
		{"least-sp", MethodLEASTSP, true},
		{"leastsp", MethodLEASTSP, true},
		{"sp", MethodLEASTSP, true},
		{"notears", MethodNOTEARS, true},
		{"NOTEARS", "", false},
		{"bogus", "", false},
	}
	for _, c := range cases {
		got, err := ParseMethod(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseMethod(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseMethod(%q) accepted", c.in)
		}
	}
	if len(Methods()) != 3 {
		t.Fatalf("method registry = %v", Methods())
	}
}

func TestSpecValidateRejectsOutOfRange(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		frag string // must appear in the error
	}{
		{"negative lambda", []Option{WithLambda(-0.5)}, "lambda"},
		{"NaN lambda", []Option{WithLambda(math.NaN())}, "lambda"},
		{"alpha above 1", []Option{WithAlpha(1.5)}, "alpha"},
		{"alpha below 0", []Option{WithAlpha(-0.1)}, "alpha"},
		{"zero epsilon", []Option{WithEpsilon(0)}, "epsilon"},
		{"negative threshold", []Option{WithThreshold(-1)}, "threshold"},
		{"zero init density", []Option{WithInitDensity(0)}, "init_density"},
		{"init density above 1", []Option{WithInitDensity(1.5)}, "init_density"},
		{"zero k", []Option{WithK(0)}, "k"},
		{"negative batch", []Option{WithBatchSize(-1)}, "batch_size"},
		{"zero max outer", []Option{WithMaxOuter(0)}, "max_outer"},
		{"zero max inner", []Option{WithMaxInner(0)}, "max_inner"},
		{"negative parallelism", []Option{WithParallelism(-2)}, "parallelism"},
		{"unknown method", []Option{WithMethod("magic")}, "unknown method"},
		{"k with notears", []Option{WithMethod(MethodNOTEARS), WithK(5)}, "does not apply"},
		{"alpha with notears", []Option{WithMethod(MethodNOTEARS), WithAlpha(0.9)}, "does not apply"},
		{"density with notears", []Option{WithMethod(MethodNOTEARS), WithInitDensity(0.1)}, "does not apply"},
		{"exact term with notears", []Option{WithMethod(MethodNOTEARS), WithExactTermination(true)}, "exact_termination"},
		{"sinks with notears", []Option{WithMethod(MethodNOTEARS), WithSinkNodes([]int{0})}, "sink_nodes"},
		{"sinks with least-sp", []Option{WithMethod(MethodLEASTSP), WithSinkNodes([]int{0})}, "sink_nodes"},
		{"negative sink index", []Option{WithSinkNodes([]int{2, -1})}, "sink_nodes"},
	}
	for _, c := range cases {
		if _, err := New(c.opts...); err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
}

func TestSpecExplicitZerosAreHonored(t *testing.T) {
	// The legacy footgun: Options.Lambda = 0 silently meant "paper
	// default 0.1". Spec must pass the explicit zero through.
	s, err := New(WithLambda(0), WithAlpha(0), WithSeed(0))
	if err != nil {
		t.Fatal(err)
	}
	co := s.coreOptions()
	if co.Lambda != 0 || co.Alpha != 0 || co.Seed != 0 {
		t.Fatalf("explicit zeros lost: λ=%g α=%g seed=%d", co.Lambda, co.Alpha, co.Seed)
	}
	// Unset fields still resolve to the paper defaults.
	d := Defaults()
	s2, err := New()
	if err != nil {
		t.Fatal(err)
	}
	co2 := s2.coreOptions()
	if co2.Lambda != d.Lambda || co2.K != d.K || co2.Epsilon != d.Epsilon ||
		co2.MaxOuter != d.MaxOuter || co2.Seed != d.Seed {
		t.Fatalf("unset fields must resolve to Defaults(): %+v vs %+v", co2, d)
	}
}

func TestSpecWithDerivesWithoutMutating(t *testing.T) {
	base, err := New(WithLambda(0.3), WithSinkNodes([]int{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	derived, err := base.With(WithLambda(0.7), WithMethod(MethodLEASTSP), WithSinkNodes(nil))
	if err != nil {
		t.Fatal(err)
	}
	if *base.lambda != 0.3 || base.Method() != MethodLEAST {
		t.Fatalf("With mutated its receiver: %+v", base)
	}
	if *derived.lambda != 0.7 || derived.Method() != MethodLEASTSP {
		t.Fatalf("derived spec wrong: %+v", derived)
	}
	if _, err := base.With(WithAlpha(2)); err == nil {
		t.Fatal("With must validate")
	}
}

// randomSpec draws a Spec with every field independently set or unset
// — the property-test generator for the JSON round trip.
func randomSpec(rng *rand.Rand) *Spec {
	s := &Spec{}
	maybe := func(f func()) {
		if rng.Intn(2) == 0 {
			f()
		}
	}
	methods := []Method{"", MethodLEAST, MethodLEASTSP, MethodNOTEARS}
	s.method = methods[rng.Intn(len(methods))]
	maybe(func() { WithK(1 + rng.Intn(9))(s) })
	maybe(func() { WithAlpha(rng.Float64())(s) })
	maybe(func() { WithLambda(rng.Float64())(s) })
	maybe(func() { WithEpsilon(math.Pow(10, -1-rng.Float64()*7))(s) })
	maybe(func() { WithThreshold(rng.Float64())(s) })
	maybe(func() { WithBatchSize(rng.Intn(1024))(s) })
	maybe(func() { WithInitDensity(math.Nextafter(0, 1) + rng.Float64())(s) })
	maybe(func() { WithMaxOuter(1 + rng.Intn(64))(s) })
	maybe(func() { WithMaxInner(1 + rng.Intn(500))(s) })
	maybe(func() { WithExactTermination(rng.Intn(2) == 0)(s) })
	maybe(func() { WithParallelism(rng.Intn(16))(s) })
	maybe(func() { WithSinkNodes([]int{rng.Intn(10), rng.Intn(10)})(s) })
	maybe(func() { WithSeed(rng.Int63())(s) })
	return s
}

func TestSpecJSONRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		s := randomSpec(rng)
		b1, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("iter %d: marshal: %v", i, err)
		}
		var back Spec
		if err := json.Unmarshal(b1, &back); err != nil {
			t.Fatalf("iter %d: unmarshal: %v\n%s", i, err, b1)
		}
		b2, err := json.Marshal(&back)
		if err != nil {
			t.Fatalf("iter %d: re-marshal: %v", i, err)
		}
		if string(b1) != string(b2) {
			t.Fatalf("iter %d: round trip not canonical:\n%s\nvs\n%s", i, b1, b2)
		}
	}
	// The set/unset distinction must survive: an empty spec marshals to
	// {} and an explicit zero keeps its key.
	empty, _ := json.Marshal(&Spec{})
	if string(empty) != "{}" {
		t.Fatalf("empty spec = %s", empty)
	}
	zeroed, err := New(WithLambda(0))
	if err != nil {
		t.Fatal(err)
	}
	zb, _ := json.Marshal(zeroed)
	if string(zb) != `{"lambda":0}` {
		t.Fatalf("explicit zero lost its key: %s", zb)
	}
}

// TestSpecCanonical: set-vs-unset must vanish under canonicalization —
// an explicit default and an unset field fingerprint identically, a
// partial spec matches its fully-specified legacy twin, and knobs the
// method ignores are dropped.
func TestSpecCanonical(t *testing.T) {
	canon := func(s *Spec) string {
		b, err := json.Marshal(s.Canonical())
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	empty, _ := New()
	explicitDefault, _ := New(WithLambda(0.1)) // λ's default, spelled out
	if canon(empty) != canon(explicitDefault) {
		t.Fatalf("explicit default must canonicalize like unset:\n%s\nvs\n%s",
			canon(empty), canon(explicitDefault))
	}
	partial, _ := New(WithLambda(0.2), WithEpsilon(1e-3), WithSeed(5))
	o := Defaults()
	o.Lambda = 0.2
	o.Epsilon = 1e-3
	o.Seed = 5
	if canon(partial) != canon(o.Spec()) {
		t.Fatalf("partial spec must canonicalize like its legacy twin:\n%s\nvs\n%s",
			canon(partial), canon(o.Spec()))
	}
	if canon(partial) == canon(empty) {
		t.Fatal("different lambdas must not collide")
	}
	// The baseline's canonical form carries only the knobs it honors.
	nt, _ := New(WithMethod(MethodNOTEARS), WithLambda(0.2))
	if c := canon(nt); strings.Contains(c, "\"k\"") || strings.Contains(c, "init_density") {
		t.Fatalf("notears canonical form leaked inapplicable knobs: %s", c)
	}
}

func TestSpecJSONRejectsUnknownFields(t *testing.T) {
	var s Spec
	if err := json.Unmarshal([]byte(`{"sparse": true}`), &s); err == nil {
		t.Fatal("v1-only field accepted by the Spec wire form")
	}
	if err := json.Unmarshal([]byte(`{"lamda": 0.1}`), &s); err == nil {
		t.Fatal("misspelled field accepted")
	}
	if err := json.Unmarshal([]byte(`{"method": "dagma"}`), &s); err != nil {
		t.Fatalf("unmarshal must not range-check (Validate does): %v", err)
	}
	if err := s.Validate(); err == nil {
		t.Fatal("unknown method survived Validate")
	}
}

// TestSpecLearnEquivalence pins the redesign's compatibility promise:
// Spec.Learn reproduces the deprecated entry points bit-for-bit on a
// seeded d=20 problem, for all three methods.
func TestSpecLearnEquivalence(t *testing.T) {
	ctx := context.Background()
	truth := GenerateDAG(3, ErdosRenyi, 20, 2)
	x := SampleLSEM(4, truth, 200, GaussianNoise)

	t.Run("least", func(t *testing.T) {
		o := Defaults()
		o.Lambda = 0.2
		o.Epsilon = 1e-3
		o.Parallelism = 1
		legacy, err := Learn(x, o)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := New(WithLambda(0.2), WithEpsilon(1e-3), WithParallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		got, err := spec.Learn(ctx, x)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Weights.EqualApprox(legacy.Weights, 0) {
			t.Fatal("Spec.Learn(MethodLEAST) differs from Learn")
		}
		if got.Delta != legacy.Delta || got.InnerIters != legacy.InnerIters {
			t.Fatalf("trajectory differs: %+v vs %+v", got, legacy)
		}
	})

	t.Run("least-sp", func(t *testing.T) {
		o := Defaults()
		o.Sparse = true
		o.Lambda = 0.2
		o.Epsilon = 1e-3
		o.InitDensity = 0.2
		o.MaxOuter = 6
		o.Parallelism = 1
		legacy, err := Learn(x, o)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := New(WithMethod(MethodLEASTSP), WithLambda(0.2), WithEpsilon(1e-3),
			WithInitDensity(0.2), WithMaxOuter(6), WithParallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		got, err := spec.Learn(ctx, x)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Weights.EqualApprox(legacy.Weights, 0) {
			t.Fatal("Spec.Learn(MethodLEASTSP) differs from sparse Learn")
		}
	})

	t.Run("notears", func(t *testing.T) {
		o := Defaults()
		o.Lambda = 0.2
		o.Epsilon = 1e-3
		o.MaxOuter = 8
		legacy, err := Baseline(x, o)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := New(WithMethod(MethodNOTEARS), WithLambda(0.2), WithEpsilon(1e-3), WithMaxOuter(8))
		if err != nil {
			t.Fatal(err)
		}
		got, err := spec.Learn(ctx, x)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Weights.EqualApprox(legacy.Weights, 0) {
			t.Fatal("Spec.Learn(MethodNOTEARS) differs from Baseline")
		}
		if got.H != legacy.H || got.InnerIters != legacy.InnerIters {
			t.Fatalf("trajectory differs: %+v vs %+v", got, legacy)
		}
	})
}

// TestSpecNOTEARSCancelAndProgress covers the capability the redesign
// adds to the baseline: ctx cancellation within one inner iteration
// and per-iteration progress, uniform with the LEAST methods.
func TestSpecNOTEARSCancelAndProgress(t *testing.T) {
	truth := GenerateDAG(21, ErdosRenyi, 30, 2)
	x := SampleLSEM(22, truth, 200, GaussianNoise)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ticks int
	spec, err := New(
		WithMethod(MethodNOTEARS),
		WithEpsilon(1e-12), // unreachable: must run until cancelled
		WithMaxInner(2000),
		WithProgress(func(p Progress) {
			ticks++
			if p.Inner != ticks || p.Solves == 0 {
				t.Errorf("progress out of order: %+v at tick %d", p, ticks)
			}
			if ticks == 5 {
				cancel()
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := spec.Learn(ctx, x)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled learn must not return a result")
	}
	if ticks > 6 {
		t.Fatalf("baseline kept iterating %d ticks after cancellation", ticks)
	}

	// A pre-cancelled context never reports a completion.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	spec2, err := New(WithMethod(MethodNOTEARS))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec2.Learn(pre, x); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestSpecUniformValidation: all three methods share the Learn input
// checks, including the NaN/Inf rejection Baseline once lacked.
func TestSpecUniformValidation(t *testing.T) {
	bad := NewMatrix(2, 2)
	bad.Set(0, 0, math.Inf(1))
	for _, m := range Methods() {
		spec, err := New(WithMethod(m))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := spec.Learn(context.Background(), nil); err == nil {
			t.Errorf("%s: nil matrix accepted", m)
		}
		if _, err := spec.Learn(context.Background(), NewMatrix(5, 1)); err == nil {
			t.Errorf("%s: single variable accepted", m)
		}
		if _, err := spec.Learn(context.Background(), bad); err == nil {
			t.Errorf("%s: Inf matrix accepted", m)
		}
	}

	// Sink indices beyond the data's width are caught at Learn time
	// (Validate cannot know d) instead of being silently skipped.
	spec, err := New(WithSinkNodes([]int{5}))
	if err != nil {
		t.Fatal(err)
	}
	x := NewMatrix(10, 3)
	if _, err := spec.Learn(context.Background(), x); err == nil ||
		!strings.Contains(err.Error(), "sink_nodes index 5 out of range") {
		t.Fatalf("oversized sink index: err = %v", err)
	}
}

// TestBaselineHonorsParallelismAndSeedZero pins the Baseline parity
// fixes: Parallelism is threaded through (bit-identical results at any
// worker bound — GEMM stripes partition rows) and Seed = 0 means the
// default seed, exactly like Learn.
func TestBaselineHonorsParallelismAndSeedZero(t *testing.T) {
	truth := GenerateDAG(31, ErdosRenyi, 15, 2)
	x := SampleLSEM(32, truth, 150, GaussianNoise)
	o := Defaults()
	o.Epsilon = 1e-2
	o.MaxOuter = 4

	o.Parallelism = 1
	serial, err := Baseline(x, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Parallelism = 4
	parallel, err := Baseline(x, o)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Weights.EqualApprox(parallel.Weights, 0) {
		t.Fatal("Baseline results must be bit-identical across worker bounds")
	}

	o.Parallelism = 0
	o.Seed = 0 // zero means default (1), as in Learn
	zeroSeed, err := Baseline(x, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Seed = 1
	oneSeed, err := Baseline(x, o)
	if err != nil {
		t.Fatal(err)
	}
	if !zeroSeed.Weights.EqualApprox(oneSeed.Weights, 0) {
		t.Fatal("Seed=0 must mean the default seed")
	}
}
