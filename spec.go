package least

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/notears"
)

// Method identifies a structure-learning algorithm behind the unified
// Spec.Learn entry point. The string values double as the wire form of
// the v2 serving API's "method" field (see DESIGN.md §5).
type Method string

// The method registry. All three methods share the same loss,
// augmented-Lagrangian outer loop and Adam inner solver; they differ
// in the acyclicity constraint and the weight representation.
const (
	// MethodLEAST is the paper's dense learner ("LEAST-TF" analogue):
	// spectral-bound constraint, dense d×d weights.
	MethodLEAST Method = "least"
	// MethodLEASTSP is the sparse learner ("LEAST-SP"): spectral-bound
	// constraint with W confined to an O(nnz) candidate support — the
	// mode that scales to 10⁵ variables.
	MethodLEASTSP Method = "least-sp"
	// MethodNOTEARS is the comparison baseline (Zheng et al. 2018):
	// exact matrix-exponential constraint, O(d³) per gradient.
	MethodNOTEARS Method = "notears"
)

// Methods enumerates the registered methods in documentation order.
func Methods() []Method { return []Method{MethodLEAST, MethodLEASTSP, MethodNOTEARS} }

// String returns the wire name.
func (m Method) String() string { return string(m) }

func (m Method) known() bool {
	switch m {
	case MethodLEAST, MethodLEASTSP, MethodNOTEARS:
		return true
	}
	return false
}

// ParseMethod resolves a user-facing method name (CLI flags, config
// files). It accepts the canonical wire names plus the obvious
// spellings "leastsp"/"sp" for MethodLEASTSP; the empty string is
// MethodLEAST, matching Spec's default.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "", string(MethodLEAST):
		return MethodLEAST, nil
	case string(MethodLEASTSP), "leastsp", "sp":
		return MethodLEASTSP, nil
	case string(MethodNOTEARS):
		return MethodNOTEARS, nil
	}
	return "", fmt.Errorf("least: unknown method %q (want %q, %q or %q)",
		s, MethodLEAST, MethodLEASTSP, MethodNOTEARS)
}

// Spec is the explicit, validatable configuration of one structure
// learn — the single entry point serving all three methods. Unlike the
// legacy Options struct, a Spec distinguishes *unset* from *explicit
// zero*: a field never touched by an option resolves to the paper
// default (the same values Defaults() documents), while WithLambda(0)
// or WithAlpha(0) means literally zero. Build one with New, derive
// variants with With, and run it with Learn:
//
//	spec, err := least.New(
//		least.WithMethod(least.MethodLEASTSP),
//		least.WithLambda(0.05),
//		least.WithSeed(7),
//	)
//	if err != nil { ... }
//	res, err := spec.Learn(ctx, x)
//
// The zero Spec is valid and runs MethodLEAST with all defaults.
// Spec marshals to/from JSON with one key per explicitly-set field
// (the v2 serving wire form); see DESIGN.md §5 for the schema and the
// v1→v2 field mapping.
type Spec struct {
	method Method

	k, batchSize, maxOuter, maxInner, parallelism  *int
	alpha, lambda, epsilon, threshold, initDensity *float64
	exactTermination                               *bool
	sinkNodes                                      []int
	seed                                           *int64

	// progress is runtime state, not configuration: it is excluded
	// from the JSON form and therefore from serving cache keys.
	progress func(Progress)
}

// Option mutates a Spec under construction (New) or derivation (With).
type Option func(*Spec)

// WithMethod selects the learning algorithm (default MethodLEAST).
func WithMethod(m Method) Option { return func(s *Spec) { s.method = m } }

// WithK sets the number of similarity-scaling rounds k of the spectral
// bound δ^(k) (default 5). LEAST methods only.
func WithK(k int) Option { return func(s *Spec) { s.k = &k } }

// WithAlpha sets the row/column balance α ∈ [0, 1] of the spectral
// bound (default 0.9). LEAST methods only.
func WithAlpha(a float64) Option { return func(s *Spec) { s.alpha = &a } }

// WithLambda sets the L1 regularization weight λ ≥ 0 (default 0.1).
// An explicit 0 disables regularization — inexpressible with the
// legacy Options struct.
func WithLambda(l float64) Option { return func(s *Spec) { s.lambda = &l } }

// WithEpsilon sets the acyclicity tolerance ε > 0 (default 1e-4).
func WithEpsilon(e float64) Option { return func(s *Spec) { s.epsilon = &e } }

// WithThreshold sets the in-loop weight filter θ ≥ 0 (default 0: no
// filtering).
func WithThreshold(t float64) Option { return func(s *Spec) { s.threshold = &t } }

// WithBatchSize sets the mini-batch size B (default 0: full batch).
func WithBatchSize(b int) Option { return func(s *Spec) { s.batchSize = &b } }

// WithInitDensity sets ζ ∈ (0, 1], the candidate-support density of
// MethodLEASTSP (default 1e-4, the paper's 10⁵-variable setting).
func WithInitDensity(z float64) Option { return func(s *Spec) { s.initDensity = &z } }

// WithMaxOuter bounds the augmented-Lagrangian outer iterations
// (default 32).
func WithMaxOuter(n int) Option { return func(s *Spec) { s.maxOuter = &n } }

// WithMaxInner bounds the inner Adam iterations per solve
// (default 200).
func WithMaxInner(n int) Option { return func(s *Spec) { s.maxInner = &n } }

// WithExactTermination additionally checks the exact NOTEARS h(W)
// after each outer iteration and stops at h ≤ ε — the paper's §V-A
// fairness termination. LEAST methods only (the baseline already
// terminates on the exact h).
func WithExactTermination(on bool) Option { return func(s *Spec) { s.exactTermination = &on } }

// WithParallelism bounds the worker fan-out of the execution backend
// (0 = all cores, 1 = serial, n > 1 caps the pool; default 0). Applies
// to every method: the CSR kernels of MethodLEASTSP, the Hutchinson
// matvecs of MethodLEAST, and the dense loss GEMMs of all three.
func WithParallelism(n int) Option { return func(s *Spec) { s.parallelism = &n } }

// WithSinkNodes constrains the listed variables to have no outgoing
// edges (pure effects). MethodLEAST only.
func WithSinkNodes(nodes []int) Option {
	return func(s *Spec) { s.sinkNodes = append([]int(nil), nodes...) }
}

// WithSeed fixes the random seed (default 1). Unlike the legacy
// Options, an explicit 0 is honored as the literal seed.
func WithSeed(seed int64) Option { return func(s *Spec) { s.seed = &seed } }

// WithProgress registers a per-iteration callback, invoked on the
// learner's goroutine after every inner iteration for every method
// (for MethodNOTEARS, Progress.Delta carries the exact constraint h).
// It must be fast and non-blocking. The callback is runtime state: it
// does not survive JSON round trips and does not affect serving cache
// keys.
func WithProgress(fn func(Progress)) Option { return func(s *Spec) { s.progress = fn } }

// New builds a Spec from options and validates it, rejecting
// out-of-range values with actionable errors instead of silently
// substituting defaults (the legacy Options footgun).
func New(opts ...Option) (*Spec, error) {
	s := &Spec{}
	for _, opt := range opts {
		opt(s)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// With derives a new Spec: a copy of s with opts applied, validated.
// The receiver is never mutated.
func (s *Spec) With(opts ...Option) (*Spec, error) {
	c := s.clone()
	for _, opt := range opts {
		opt(c)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// clonePtr copies a set-marker pointer so derived Specs share nothing.
func clonePtr[T any](p *T) *T {
	if p == nil {
		return nil
	}
	v := *p
	return &v
}

func (s *Spec) clone() *Spec {
	c := *s
	c.k = clonePtr(s.k)
	c.batchSize = clonePtr(s.batchSize)
	c.maxOuter = clonePtr(s.maxOuter)
	c.maxInner = clonePtr(s.maxInner)
	c.parallelism = clonePtr(s.parallelism)
	c.alpha = clonePtr(s.alpha)
	c.lambda = clonePtr(s.lambda)
	c.epsilon = clonePtr(s.epsilon)
	c.threshold = clonePtr(s.threshold)
	c.initDensity = clonePtr(s.initDensity)
	c.exactTermination = clonePtr(s.exactTermination)
	c.seed = clonePtr(s.seed)
	c.sinkNodes = append([]int(nil), s.sinkNodes...)
	return &c
}

// Method returns the resolved method (the zero value resolves to
// MethodLEAST).
func (s *Spec) Method() Method {
	if s == nil || s.method == "" {
		return MethodLEAST
	}
	return s.method
}

// Parallelism returns the requested worker bound (0 when unset,
// meaning all cores) — the knob the serving layer caps per pool slot.
func (s *Spec) Parallelism() int {
	if s == nil || s.parallelism == nil {
		return 0
	}
	return *s.parallelism
}

// Validate checks every explicitly-set field against its documented
// range and the selected method, returning an actionable error (named
// by the JSON wire field) for the first violation. Unset fields are
// always valid — they resolve to defaults.
func (s *Spec) Validate() error {
	m := s.Method()
	if !m.known() {
		return fmt.Errorf("least: unknown method %q (want %q, %q or %q)",
			string(s.method), MethodLEAST, MethodLEASTSP, MethodNOTEARS)
	}
	bad := func(field string, format string, args ...any) error {
		return fmt.Errorf("least: invalid spec: %s %s", field, fmt.Sprintf(format, args...))
	}
	finite := func(field string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return bad(field, "must be finite, got %v", v)
		}
		return nil
	}
	if s.lambda != nil {
		if err := finite("lambda", *s.lambda); err != nil {
			return err
		}
		if *s.lambda < 0 {
			return bad("lambda", "must be >= 0, got %g", *s.lambda)
		}
	}
	if s.alpha != nil {
		if err := finite("alpha", *s.alpha); err != nil {
			return err
		}
		if *s.alpha < 0 || *s.alpha > 1 {
			return bad("alpha", "must be in [0, 1], got %g", *s.alpha)
		}
	}
	if s.epsilon != nil {
		if err := finite("epsilon", *s.epsilon); err != nil {
			return err
		}
		if *s.epsilon <= 0 {
			return bad("epsilon", "must be > 0, got %g", *s.epsilon)
		}
	}
	if s.threshold != nil {
		if err := finite("threshold", *s.threshold); err != nil {
			return err
		}
		if *s.threshold < 0 {
			return bad("threshold", "must be >= 0, got %g", *s.threshold)
		}
	}
	if s.initDensity != nil {
		if err := finite("init_density", *s.initDensity); err != nil {
			return err
		}
		if *s.initDensity <= 0 || *s.initDensity > 1 {
			return bad("init_density", "must be in (0, 1], got %g", *s.initDensity)
		}
	}
	if s.k != nil && *s.k < 1 {
		return bad("k", "must be >= 1, got %d", *s.k)
	}
	if s.batchSize != nil && *s.batchSize < 0 {
		return bad("batch_size", "must be >= 0 (0 = full batch), got %d", *s.batchSize)
	}
	if s.maxOuter != nil && *s.maxOuter < 1 {
		return bad("max_outer", "must be >= 1, got %d", *s.maxOuter)
	}
	if s.maxInner != nil && *s.maxInner < 1 {
		return bad("max_inner", "must be >= 1, got %d", *s.maxInner)
	}
	if s.parallelism != nil && *s.parallelism < 0 {
		return bad("parallelism", "must be >= 0 (0 = all cores), got %d", *s.parallelism)
	}
	// Method applicability: setting a knob the selected method cannot
	// honor is an error, not a silent no-op.
	notFor := func(field string) error {
		return fmt.Errorf("least: %s does not apply to method %q", field, m)
	}
	if m == MethodNOTEARS {
		switch {
		case s.k != nil:
			return notFor("k")
		case s.alpha != nil:
			return notFor("alpha")
		case s.initDensity != nil:
			return notFor("init_density")
		case s.exactTermination != nil:
			return fmt.Errorf("least: exact_termination does not apply to method %q (the baseline always terminates on the exact h)", m)
		}
	}
	if s.sinkNodes != nil && m != MethodLEAST {
		return notFor("sink_nodes")
	}
	for _, n := range s.sinkNodes {
		if n < 0 {
			return bad("sink_nodes", "index must be >= 0, got %d", n)
		}
	}
	return nil
}

// ValidateFor is Validate plus the checks that need the data's width d
// (one column per variable): sink indices must fall in [0, d). Learn
// applies it automatically; the serving layer calls it at admission so
// a doomed submission is a 400, not a queued job that fails later.
func (s *Spec) ValidateFor(d int) error {
	if err := s.Validate(); err != nil {
		return err
	}
	for _, n := range s.sinkNodes {
		if n >= d {
			return fmt.Errorf("least: invalid spec: sink_nodes index %d out of range for %d variables", n, d)
		}
	}
	return nil
}

// specWire is the JSON form of a Spec: one key per explicitly-set
// field, so unset ≠ zero survives the round trip. Field names are the
// v2 serving wire names (DESIGN.md §5).
type specWire struct {
	Method           Method   `json:"method,omitempty"`
	K                *int     `json:"k,omitempty"`
	Alpha            *float64 `json:"alpha,omitempty"`
	Lambda           *float64 `json:"lambda,omitempty"`
	Epsilon          *float64 `json:"epsilon,omitempty"`
	Threshold        *float64 `json:"threshold,omitempty"`
	BatchSize        *int     `json:"batch_size,omitempty"`
	InitDensity      *float64 `json:"init_density,omitempty"`
	MaxOuter         *int     `json:"max_outer,omitempty"`
	MaxInner         *int     `json:"max_inner,omitempty"`
	ExactTermination *bool    `json:"exact_termination,omitempty"`
	Parallelism      *int     `json:"parallelism,omitempty"`
	SinkNodes        []int    `json:"sink_nodes,omitempty"`
	Seed             *int64   `json:"seed,omitempty"`
}

// MarshalJSON emits one key per explicitly-set field. The output is
// canonical (fixed key order, no volatile state), which is what makes
// it usable as a serving cache fingerprint.
func (s *Spec) MarshalJSON() ([]byte, error) {
	return json.Marshal(specWire{
		Method:           s.method,
		K:                s.k,
		Alpha:            s.alpha,
		Lambda:           s.lambda,
		Epsilon:          s.epsilon,
		Threshold:        s.threshold,
		BatchSize:        s.batchSize,
		InitDensity:      s.initDensity,
		MaxOuter:         s.maxOuter,
		MaxInner:         s.maxInner,
		ExactTermination: s.exactTermination,
		Parallelism:      s.parallelism,
		SinkNodes:        s.sinkNodes,
		Seed:             s.seed,
	})
}

// UnmarshalJSON parses the wire form, rejecting unknown fields (a
// misspelled knob must not silently become a default). It does not
// validate ranges — call Validate (Learn does so automatically).
func (s *Spec) UnmarshalJSON(b []byte) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var w specWire
	if err := dec.Decode(&w); err != nil {
		return fmt.Errorf("least: spec: %w", err)
	}
	*s = Spec{
		method:           w.Method,
		k:                w.K,
		alpha:            w.Alpha,
		lambda:           w.Lambda,
		epsilon:          w.Epsilon,
		threshold:        w.Threshold,
		batchSize:        w.BatchSize,
		initDensity:      w.InitDensity,
		maxOuter:         w.MaxOuter,
		maxInner:         w.MaxInner,
		exactTermination: w.ExactTermination,
		parallelism:      w.Parallelism,
		sinkNodes:        w.SinkNodes,
		seed:             w.Seed,
	}
	return nil
}

// Canonical returns the fully-resolved equivalent of the Spec: the
// method made explicit and every knob the method honors pinned to the
// value Learn would actually use (unset fields filled with their
// defaults, knobs the method ignores dropped, runtime state like the
// progress callback excluded). Two Specs with equal canonical forms
// provably configure the same learn, whichever mix of set and unset
// fields produced them — the serving cache fingerprints this form, so
// a partial v2 spec and its fully-spelled v1 twin share cache entries.
// Parallelism stays in the form: the sparse backend's reductions are
// deterministic only for a fixed worker count, so different bounds do
// not provably produce the same bits.
func (s *Spec) Canonical() *Spec {
	m := s.Method()
	if m == MethodNOTEARS {
		n := s.notearsOptions()
		return &Spec{
			method:      m,
			lambda:      &n.Lambda,
			epsilon:     &n.Epsilon,
			threshold:   &n.Threshold,
			batchSize:   &n.BatchSize,
			maxOuter:    &n.MaxOuter,
			maxInner:    &n.MaxInner,
			parallelism: &n.Parallelism,
			seed:        &n.Seed,
		}
	}
	c := s.coreOptions()
	out := &Spec{
		method:           m,
		k:                &c.K,
		alpha:            &c.Alpha,
		lambda:           &c.Lambda,
		epsilon:          &c.Epsilon,
		threshold:        &c.Threshold,
		batchSize:        &c.BatchSize,
		initDensity:      &c.InitDensity,
		maxOuter:         &c.MaxOuter,
		maxInner:         &c.MaxInner,
		exactTermination: &c.CheckH,
		parallelism:      &c.Parallelism,
		seed:             &c.Seed,
	}
	if m == MethodLEAST && len(c.SinkNodes) > 0 {
		out.sinkNodes = append([]int(nil), c.SinkNodes...)
	}
	return out
}

// coreOptions resolves the Spec against the paper defaults for the
// LEAST learners. Unset fields take the Defaults() values; set fields
// win, including explicit zeros.
func (s *Spec) coreOptions() core.Options {
	c := core.DefaultOptions()
	// The public defaults (Defaults()) soften two internal settings:
	// ε = 1e-4 and 32 outer rounds are where recovery quality plateaus
	// on the paper's benchmarks.
	c.Epsilon = 1e-4
	c.MaxOuter = 32
	if s.k != nil {
		c.K = *s.k
	}
	if s.alpha != nil {
		c.Alpha = *s.alpha
	}
	if s.lambda != nil {
		c.Lambda = *s.lambda
	}
	if s.epsilon != nil {
		c.Epsilon = *s.epsilon
	}
	if s.threshold != nil {
		c.Threshold = *s.threshold
	}
	if s.batchSize != nil {
		c.BatchSize = *s.batchSize
	}
	if s.initDensity != nil {
		c.InitDensity = *s.initDensity
	}
	if s.maxOuter != nil {
		c.MaxOuter = *s.maxOuter
	}
	if s.maxInner != nil {
		c.MaxInner = *s.maxInner
	}
	if s.exactTermination != nil {
		c.CheckH = *s.exactTermination
	}
	if s.parallelism != nil {
		c.Parallelism = *s.parallelism
	}
	if s.seed != nil {
		c.Seed = *s.seed
	}
	c.SinkNodes = append([]int(nil), s.sinkNodes...)
	return c
}

// notearsOptions resolves the Spec for the baseline, with the same
// public defaults where the knobs are shared.
func (s *Spec) notearsOptions() notears.Options {
	n := notears.DefaultOptions()
	n.Epsilon = 1e-4
	n.MaxOuter = 32
	if s.lambda != nil {
		n.Lambda = *s.lambda
	}
	if s.epsilon != nil {
		n.Epsilon = *s.epsilon
	}
	if s.threshold != nil {
		n.Threshold = *s.threshold
	}
	if s.batchSize != nil {
		n.BatchSize = *s.batchSize
	}
	if s.maxOuter != nil {
		n.MaxOuter = *s.maxOuter
	}
	if s.maxInner != nil {
		n.MaxInner = *s.maxInner
	}
	if s.parallelism != nil {
		n.Parallelism = *s.parallelism
	}
	if s.seed != nil {
		n.Seed = *s.seed
	}
	return n
}

// Learn runs the configured method on the n×d sample matrix x (one
// column per variable, one row per i.i.d. observation). All methods
// share the same input validation, observe ctx within one inner
// iteration (returning ctx.Err() when cancelled), and deliver
// WithProgress callbacks after every inner iteration.
//
// Deprecated: use LearnDataset, which accepts any Dataset — including
// streamed sources whose rows are never materialized. Learn remains a
// thin wrapper over LearnDataset(ctx, FromMatrix(x, nil)) and behaves
// exactly as it always has: the in-memory matrix adapter routes
// through the historical row path, bit-for-bit.
func (s *Spec) Learn(ctx context.Context, x *Matrix) (*Result, error) {
	return s.LearnDataset(ctx, FromMatrix(x, nil))
}

// LearnDataset runs the configured method on a Dataset — the canonical
// entry point behind Learn, Baseline, the CLI and the serving daemon.
// The execution mode follows the method and the dataset's
// capabilities:
//
//   - MethodLEAST and MethodNOTEARS at full batch run off the
//     dataset's sufficient statistics (DESIGN.md §6): after one ingest
//     pass, every iteration costs O(d³) however large n is, and a
//     streamed Dataset (OpenDataset) is never materialized.
//   - MethodLEASTSP and mini-batched learns touch individual rows, so
//     the dataset must implement RowSource (every implementation here
//     except FromStats does).
//   - The FromMatrix adapter always takes the exact historical row
//     path, keeping the deprecated matrix entry points bit-for-bit
//     stable.
//
// All methods share the same input validation, observe ctx within one
// inner iteration (returning ctx.Err() when cancelled), and deliver
// WithProgress callbacks after every inner iteration.
func (s *Spec) LearnDataset(ctx context.Context, ds Dataset) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if ds == nil {
		return nil, errors.New("least: nil dataset")
	}
	n, d := ds.Dims()
	if n == 0 || d == 0 {
		return nil, errors.New("least: empty sample matrix")
	}
	if names := ds.Names(); names != nil && len(names) != d {
		return nil, fmt.Errorf("least: %d names for %d variables", len(names), d)
	}
	// Spec-level rejections come before any data access: a doomed
	// configuration must not cost a file-backed dataset its O(n·d)
	// row materialization.
	if d < 2 {
		return nil, fmt.Errorf("least: need at least 2 variables, got %d", d)
	}
	if err := s.ValidateFor(d); err != nil {
		return nil, err
	}
	if s.LearnsFromRows(ds) {
		rs, ok := ds.(RowSource)
		if !ok {
			return nil, fmt.Errorf("least: %s needs row access, but the dataset provides sufficient statistics only", s.rowsWhy())
		}
		x, err := rs.Matrix(ctx)
		if err != nil {
			return nil, err
		}
		return s.learnMatrix(ctx, x)
	}
	st, err := ds.Stats(ctx)
	if err != nil {
		return nil, err
	}
	if st.HasNaN() {
		return nil, errors.New("least: sample matrix contains NaN/Inf")
	}
	return s.learnStats(ctx, st)
}

// needsRows reports whether the configured execution mode touches
// individual rows: the sparse learner keeps the samples dense in
// memory, and mini-batching re-samples row subsets every iteration —
// neither is expressible over a Gram summary.
func (s *Spec) needsRows() bool {
	return s.Method() == MethodLEASTSP || (s.batchSize != nil && *s.batchSize > 0)
}

// LearnsFromRows reports which execution path LearnDataset takes for
// ds under this spec: true for the row-backed path (the method or
// batching needs rows, or the dataset is the legacy-exact in-memory
// matrix adapter), false for the sufficient-statistics path. The two
// paths agree only to floating-point tolerance, so anything that
// caches learn results — the serving layer does — must key on the
// path as well as on the data and the spec.
func (s *Spec) LearnsFromRows(ds Dataset) bool {
	if s.needsRows() {
		return true
	}
	rp, ok := ds.(rowPreferred)
	return ok && rp.preferRows()
}

func (s *Spec) rowsWhy() string {
	if s.Method() == MethodLEASTSP {
		return "method \"least-sp\""
	}
	return "batch_size"
}

// learnStats is the sufficient-statistics execution path shared by the
// dense full-batch methods.
func (s *Spec) learnStats(ctx context.Context, st *SuffStats) (*Result, error) {
	if s.Method() == MethodNOTEARS {
		no := s.notearsOptions()
		if s.progress != nil {
			cb := s.progress
			no.Progress = func(p notears.Progress) {
				cb(Progress{Solves: p.Solves, Inner: p.Inner, Delta: p.H, Elapsed: p.Elapsed})
			}
		}
		res := notears.RunStatsCtx(ctx, st, no)
		if res.Cancelled {
			return nil, ctx.Err()
		}
		return &Result{
			Weights:    res.W,
			Delta:      res.H,
			H:          res.H,
			Converged:  res.Converged,
			OuterIters: res.OuterIters,
			InnerIters: res.InnerIters,
		}, nil
	}
	co := s.coreOptions()
	if s.progress != nil {
		cb := s.progress
		co.Progress = func(p core.Progress) {
			cb(Progress{Solves: p.Solves, Inner: p.Inner, Delta: p.Delta, Elapsed: p.Elapsed})
		}
	}
	res := core.DenseStatsCtx(ctx, st, co)
	if res.Cancelled {
		return nil, ctx.Err()
	}
	return &Result{
		Weights:       res.W,
		SparseWeights: res.WSparse,
		Delta:         res.Delta,
		H:             res.H,
		Converged:     res.Converged,
		OuterIters:    res.OuterIters,
		InnerIters:    res.InnerIters,
	}, nil
}

// learnMatrix is the historical row-backed execution path.
func (s *Spec) learnMatrix(ctx context.Context, x *Matrix) (*Result, error) {
	if x == nil || x.Rows() == 0 || x.Cols() == 0 {
		return nil, errors.New("least: empty sample matrix")
	}
	if x.HasNaN() {
		return nil, errors.New("least: sample matrix contains NaN/Inf")
	}
	if x.Cols() < 2 {
		return nil, fmt.Errorf("least: need at least 2 variables, got %d", x.Cols())
	}
	if err := s.ValidateFor(x.Cols()); err != nil {
		return nil, err
	}

	if s.Method() == MethodNOTEARS {
		no := s.notearsOptions()
		if s.progress != nil {
			cb := s.progress
			no.Progress = func(p notears.Progress) {
				cb(Progress{Solves: p.Solves, Inner: p.Inner, Delta: p.H, Elapsed: p.Elapsed})
			}
		}
		res := notears.RunCtx(ctx, x, no)
		if res.Cancelled {
			return nil, ctx.Err()
		}
		return &Result{
			Weights:    res.W,
			Delta:      res.H,
			H:          res.H,
			Converged:  res.Converged,
			OuterIters: res.OuterIters,
			InnerIters: res.InnerIters,
		}, nil
	}

	co := s.coreOptions()
	if s.progress != nil {
		cb := s.progress
		co.Progress = func(p core.Progress) {
			cb(Progress{Solves: p.Solves, Inner: p.Inner, Delta: p.Delta, Elapsed: p.Elapsed})
		}
	}
	var res *core.Result
	if s.Method() == MethodLEASTSP {
		res = core.SparseCtx(ctx, x, co)
	} else {
		res = core.DenseCtx(ctx, x, co)
	}
	if res.Cancelled {
		return nil, ctx.Err()
	}
	return &Result{
		Weights:       res.W,
		SparseWeights: res.WSparse,
		Delta:         res.Delta,
		H:             res.H,
		Converged:     res.Converged,
		OuterIters:    res.OuterIters,
		InnerIters:    res.InnerIters,
	}, nil
}

// Spec converts legacy Options to the equivalent fully-specified Spec
// under the legacy zero-means-default rules (every field resolves to
// exactly the value a Learn call would have used, so Spec.Learn
// reproduces Learn bit-for-bit). The method is MethodLEAST, or
// MethodLEASTSP when o.Sparse is set — use BaselineSpec for the
// NOTEARS mapping. This is the migration bridge for code still holding
// an Options value.
func (o Options) Spec() *Spec {
	c := o.internal()
	if c.Parallelism < 0 {
		c.Parallelism = 0
	}
	if c.BatchSize < 0 {
		c.BatchSize = 0
	}
	if c.Threshold < 0 {
		c.Threshold = 0
	}
	s := &Spec{
		method:           MethodLEAST,
		k:                &c.K,
		alpha:            &c.Alpha,
		lambda:           &c.Lambda,
		epsilon:          &c.Epsilon,
		threshold:        &c.Threshold,
		batchSize:        &c.BatchSize,
		initDensity:      &c.InitDensity,
		maxOuter:         &c.MaxOuter,
		maxInner:         &c.MaxInner,
		exactTermination: &c.CheckH,
		parallelism:      &c.Parallelism,
		seed:             &c.Seed,
	}
	if o.Sparse {
		s.method = MethodLEASTSP
		// The sparse learner has always ignored SinkNodes; dropping
		// them here preserves that silence instead of tripping the
		// method-applicability validation.
	} else if len(c.SinkNodes) > 0 {
		s.sinkNodes = append([]int(nil), c.SinkNodes...)
	}
	return s
}

// BaselineSpec converts legacy Options to the MethodNOTEARS Spec a
// Baseline call would have used: the subset of fields the baseline
// honors (λ, ε, θ, B, iteration bounds, seed, parallelism) under the
// legacy zero-means-default rules; everything else — K, Alpha,
// InitDensity, Sparse, SinkNodes, ExactTermination — is dropped, as
// Baseline has always ignored it.
func (o Options) BaselineSpec() *Spec {
	n := notears.DefaultOptions()
	if o.Lambda > 0 {
		n.Lambda = o.Lambda
	}
	if o.Epsilon > 0 {
		n.Epsilon = o.Epsilon
	}
	if o.MaxOuter > 0 {
		n.MaxOuter = o.MaxOuter
	}
	if o.MaxInner > 0 {
		n.MaxInner = o.MaxInner
	}
	if o.BatchSize > 0 {
		n.BatchSize = o.BatchSize
	}
	if o.Threshold > 0 {
		n.Threshold = o.Threshold
	}
	if o.Seed != 0 {
		n.Seed = o.Seed
	}
	if o.Parallelism > 0 { // <= 0 already means "all cores", like Learn
		n.Parallelism = o.Parallelism
	}
	return &Spec{
		method:      MethodNOTEARS,
		lambda:      &n.Lambda,
		epsilon:     &n.Epsilon,
		threshold:   &n.Threshold,
		batchSize:   &n.BatchSize,
		maxOuter:    &n.MaxOuter,
		maxInner:    &n.MaxInner,
		seed:        &n.Seed,
		parallelism: &n.Parallelism,
	}
}

// ManifestTask is one entry of a fleet manifest — the unit of batch
// fleet learning (DESIGN.md §7). A manifest is JSONL: one task per
// line, each naming a data source plus the Spec to learn with.
// Exactly one data source must be set:
//
//   - In: local CSV/JSONL shard paths (offline fleets, leastcli -batch)
//   - CSV / Samples: inline data (POST /v2/batches)
//   - DatasetRef: a dataset registered with POST /v2/datasets
//
// A missing "spec" key learns MethodLEAST with all defaults.
type ManifestTask struct {
	// ID labels the task in reports and the batch task table; it does
	// not affect learning or the dedupe identity.
	ID string `json:"id,omitempty"`
	// In lists local sample files forming one logical dataset (CSV, or
	// .jsonl/.ndjson by extension), as in leastcli -in.
	In []string `json:"in,omitempty"`
	// Header marks a leading CSV name row (In and CSV sources).
	Header bool `json:"header,omitempty"`
	// CSV is a complete inline CSV document.
	CSV string `json:"csv,omitempty"`
	// Samples is the dense inline alternative: row-major observations.
	Samples [][]float64 `json:"samples,omitempty"`
	// Names labels the variables (optional; explicit names win over a
	// header row).
	Names []string `json:"names,omitempty"`
	// DatasetRef names a dataset registered on the serving daemon.
	DatasetRef string `json:"dataset_ref,omitempty"`
	// Center subtracts column means before learning.
	Center bool `json:"center,omitempty"`
	// Spec configures the learn; nil means MethodLEAST with defaults.
	Spec *Spec `json:"spec,omitempty"`
}

// Validate checks that the task names exactly one data source and that
// an explicit spec validates. It does not open files or resolve
// dataset references — that is the consumer's admission step, so a
// broken task fails inside its batch's error table instead of sinking
// the whole manifest.
func (t *ManifestTask) Validate() error {
	sources := 0
	if len(t.In) > 0 {
		sources++
	}
	if t.CSV != "" {
		sources++
	}
	if t.Samples != nil {
		sources++
	}
	if t.DatasetRef != "" {
		sources++
	}
	switch {
	case sources == 0:
		return errors.New("least: manifest task: missing data source (in, csv, samples or dataset_ref)")
	case sources > 1:
		return errors.New("least: manifest task: in, csv, samples and dataset_ref are mutually exclusive")
	}
	if t.Spec != nil {
		return t.Spec.Validate()
	}
	return nil
}
