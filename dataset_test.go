package least

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/sparse"
)

// testData samples a small LSEM for dataset-level tests.
func testData(t *testing.T, seed int64, d, n int) (*TrueDAG, *Matrix) {
	t.Helper()
	truth := GenerateDAG(seed, ErdosRenyi, d, 2)
	return truth, SampleLSEM(seed+1, truth, n, GaussianNoise)
}

func writeFile(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func csvOf(x *Matrix, names []string) string {
	var sb strings.Builder
	if names != nil {
		sb.WriteString(strings.Join(names, ",") + "\n")
	}
	for i := 0; i < x.Rows(); i++ {
		row := x.Row(i)
		for j, v := range row {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestDatasetFingerprintAgreement: the same rows and names fingerprint
// identically through every representation that knows the rows —
// matrix, CSR, CSV file, JSONL file — and differently once content,
// names or centering change.
func TestDatasetFingerprintAgreement(t *testing.T) {
	_, x := testData(t, 21, 6, 40)
	names := []string{"v0", "v1", "v2", "v3", "v4", "v5"}

	mds := FromMatrix(x, names)
	csr := FromCSR(sparse.FromDense(x, 0), names)
	csvPath := writeFile(t, "x.csv", csvOf(x, names))
	fds, err := OpenDataset(csvPath, DatasetOptions{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	var jl strings.Builder
	for i := 0; i < x.Rows(); i++ {
		parts := make([]string, x.Cols())
		for j, v := range x.Row(i) {
			parts[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		jl.WriteString("[" + strings.Join(parts, ",") + "]\n")
	}
	jlPath := writeFile(t, "x.jsonl", jl.String())
	jds, err := OpenDataset(jlPath, DatasetOptions{Names: names})
	if err != nil {
		t.Fatal(err)
	}

	fp := mds.Fingerprint()
	for what, ds := range map[string]Dataset{"csr": csr, "csv": fds, "jsonl": jds} {
		if got := ds.Fingerprint(); got != fp {
			t.Errorf("%s fingerprint %s != matrix fingerprint %s", what, got, fp)
		}
		n, d := ds.Dims()
		if n != x.Rows() || d != x.Cols() {
			t.Errorf("%s dims (%d,%d)", what, n, d)
		}
	}
	if got := FromMatrix(x, nil).Fingerprint(); got == fp {
		t.Error("fingerprint insensitive to names")
	}
	if got := Centered(mds).Fingerprint(); got == fp {
		t.Error("centered fingerprint equals raw fingerprint")
	}
	st, err := mds.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := FromStats(st, names).Fingerprint(); got == fp || !strings.HasPrefix(got, "stats:") {
		t.Errorf("stats fingerprint %s should be a distinct namespace", got)
	}
}

// TestLearnDatasetGramEquivalence is the equivalence property test of
// the sufficient-statistics execution path, in two tiers.
//
// Tier 1 (tight): across methods × shapes × worker counts, one full
// inner solve (MaxOuter=1, up to 200 Adam iterations — the paper's
// T_i) from precomputed statistics matches the legacy dense row path
// to 1e-8. Bit-for-bit equality is not attainable — the Gram form
// contracts against a pre-summed XᵀX while the row path sums n·d
// residual products, so every gradient differs at ~1e-16 relative —
// but over a solve with no discrete branches taken differently the
// drift stays near machine precision (measured ≤ ~1e-10 after 200
// iterations across these shapes), so 1e-8 leaves two orders of
// margin while sitting seven below the edge thresholds that consume
// the weights.
//
// Tier 2 (statistical): over the full augmented-Lagrangian schedule
// the comparison must be weaker, and that is inherent, not a looseness
// of the test: the schedule branches on float comparisons (inner-loop
// calm counters, ρ-escalation progress checks), so a 1e-16
// perturbation can reroute the trajectory to a different — equally
// valid — local optimum. Both paths must still converge and recover
// the planted structure equally well (F1 within 0.15).
func TestLearnDatasetGramEquivalence(t *testing.T) {
	cases := []struct {
		method  Method
		d, n    int
		workers int
	}{
		{MethodLEAST, 8, 120, 1},
		{MethodLEAST, 14, 400, 3},
		{MethodLEAST, 11, 257, 0},
		{MethodNOTEARS, 7, 150, 1},
		{MethodNOTEARS, 10, 300, 2},
	}
	ctx := context.Background()
	for _, c := range cases {
		t.Run(fmt.Sprintf("%s_d%d_n%d_w%d", c.method, c.d, c.n, c.workers), func(t *testing.T) {
			truth, x := testData(t, int64(3*c.d+c.n), c.d, c.n)
			st, err := FromMatrix(x, nil).Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}

			// Tier 1: one inner solve, near-bit agreement.
			oneSolve, err := New(
				WithMethod(c.method),
				WithLambda(0.1),
				WithEpsilon(1e-3),
				WithMaxOuter(1),
				WithSeed(5),
				WithParallelism(c.workers),
			)
			if err != nil {
				t.Fatal(err)
			}
			rowRes, err := oneSolve.LearnDataset(ctx, FromMatrix(x, nil))
			if err != nil {
				t.Fatal(err)
			}
			gramRes, err := oneSolve.LearnDataset(ctx, FromStats(st, nil))
			if err != nil {
				t.Fatal(err)
			}
			if rowRes.InnerIters != gramRes.InnerIters {
				t.Fatalf("iteration counts diverged within one solve: row %d, gram %d",
					rowRes.InnerIters, gramRes.InnerIters)
			}
			for i, v := range rowRes.Weights.Data() {
				if math.Abs(v-gramRes.Weights.Data()[i]) > 1e-8 {
					t.Fatalf("one-solve weights diverge at %d: %g vs %g", i, v, gramRes.Weights.Data()[i])
				}
			}

			// Tier 2: full schedule, statistically equivalent recovery.
			full, err := oneSolve.With(WithMaxOuter(8))
			if err != nil {
				t.Fatal(err)
			}
			rowFull, err := full.LearnDataset(ctx, FromMatrix(x, nil))
			if err != nil {
				t.Fatal(err)
			}
			gramFull, err := full.LearnDataset(ctx, FromStats(st, nil))
			if err != nil {
				t.Fatal(err)
			}
			if rowFull.Converged != gramFull.Converged {
				t.Fatalf("converged: row %v, gram %v", rowFull.Converged, gramFull.Converged)
			}
			mRow, _ := EvaluateBest(truth.G, rowFull.Weights, nil)
			mGram, _ := EvaluateBest(truth.G, gramFull.Weights, nil)
			if math.Abs(mRow.F1-mGram.F1) > 0.15 {
				t.Fatalf("recovery quality diverges: row F1 %.3f, gram F1 %.3f", mRow.F1, mGram.F1)
			}
		})
	}
}

// TestLearnDatasetCenteredEquivalence: centering through the rank-one
// Gram correction matches centering the rows explicitly (one inner
// solve — see TestLearnDatasetGramEquivalence for why full schedules
// only compare statistically).
func TestLearnDatasetCenteredEquivalence(t *testing.T) {
	_, x := testData(t, 77, 9, 200)
	// Add per-column offsets so centering matters.
	for i := 0; i < x.Rows(); i++ {
		for j, v := range x.Row(i) {
			x.Row(i)[j] = v + float64(j)*2
		}
	}
	spec, err := New(WithLambda(0.1), WithEpsilon(1e-3), WithMaxOuter(1), WithSeed(3), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rowRes, err := spec.LearnDataset(ctx, Centered(FromMatrix(x.Clone(), nil)))
	if err != nil {
		t.Fatal(err)
	}
	st, err := FromMatrix(x, nil).Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	gramRes, err := spec.LearnDataset(ctx, Centered(FromStats(st, nil)))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range rowRes.Weights.Data() {
		if math.Abs(v-gramRes.Weights.Data()[i]) > 1e-10 {
			t.Fatalf("centered weights diverge at %d: %g vs %g", i, v, gramRes.Weights.Data()[i])
		}
	}
}

// TestLearnDatasetFromFileMatchesMatrix: a dense learn over a streamed
// CSV dataset matches the stats learn of the same in-memory rows
// bit-for-bit. The streamed Gram is bit-identical to the matrix
// adapter's at equal worker counts; the in-memory adapters always use
// all cores, so the file side must too (Workers: 0) — this pins the
// whole file → stats → learn pipeline on any core count.
func TestLearnDatasetFromFileMatchesMatrix(t *testing.T) {
	_, x := testData(t, 31, 8, 500)
	path := writeFile(t, "samples.csv", csvOf(x, nil))
	ds, err := OpenDataset(path, DatasetOptions{Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := New(WithLambda(0.1), WithEpsilon(1e-3), WithMaxOuter(6), WithSeed(9), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	fileRes, err := spec.LearnDataset(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	st, err := FromMatrix(x, nil).Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	gramRes, err := spec.LearnDataset(ctx, FromStats(st, nil))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range fileRes.Weights.Data() {
		if v != gramRes.Weights.Data()[i] {
			t.Fatalf("file-backed learn differs from stats-backed learn at %d", i)
		}
	}
}

// TestLearnDatasetRowPaths: execution modes that need rows materialize
// them (least-sp, mini-batching) — and match the legacy matrix entry
// bit-for-bit — while stats-only datasets reject those modes.
func TestLearnDatasetRowPaths(t *testing.T) {
	_, x := testData(t, 41, 10, 150)
	path := writeFile(t, "rows.csv", csvOf(x, nil))
	ctx := context.Background()

	spSpec, err := New(WithMethod(MethodLEASTSP), WithLambda(0.1), WithEpsilon(1e-3), WithMaxOuter(4), WithSeed(2), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := spSpec.Learn(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := OpenDataset(path, DatasetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := spSpec.LearnDataset(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.SparseWeights.Val) != len(got.SparseWeights.Val) {
		t.Fatalf("sparse nnz %d vs %d", len(want.SparseWeights.Val), len(got.SparseWeights.Val))
	}
	for i, v := range want.SparseWeights.Val {
		if v != got.SparseWeights.Val[i] {
			t.Fatalf("least-sp over a file dataset diverges from the matrix path at %d", i)
		}
	}

	// Stats-only datasets cannot serve row modes.
	st, err := FromMatrix(x, nil).Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	statsOnly := FromStats(st, nil)
	if _, err := spSpec.LearnDataset(ctx, statsOnly); err == nil ||
		!strings.Contains(err.Error(), "row access") {
		t.Fatalf("least-sp over stats-only dataset: err = %v", err)
	}
	batched, err := New(WithBatchSize(32), WithLambda(0.1), WithEpsilon(1e-3), WithMaxOuter(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := batched.LearnDataset(ctx, statsOnly); err == nil ||
		!strings.Contains(err.Error(), "batch_size") {
		t.Fatalf("batched learn over stats-only dataset: err = %v", err)
	}
	// Centered mirrors its base's capabilities: a centered stats-only
	// dataset still draws the error naming the knob, not a late
	// failure from a phantom RowSource.
	if _, err := batched.LearnDataset(ctx, Centered(statsOnly)); err == nil ||
		!strings.Contains(err.Error(), "batch_size") {
		t.Fatalf("batched learn over centered stats-only dataset: err = %v", err)
	}
	// An explicit batch_size of 0 means full batch and stays on the
	// statistics path.
	full, err := New(WithBatchSize(0), WithLambda(0.1), WithEpsilon(1e-3), WithMaxOuter(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.LearnDataset(ctx, statsOnly); err != nil {
		t.Fatalf("batch_size 0 over stats-only dataset: %v", err)
	}
}

// TestFileDatasetDetectsChange: materializing rows after the file
// changed on disk fails instead of silently learning different data.
func TestFileDatasetDetectsChange(t *testing.T) {
	_, x := testData(t, 51, 5, 60)
	path := writeFile(t, "mut.csv", csvOf(x, nil))
	ds, err := OpenDataset(path, DatasetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x.Set(0, 0, x.At(0, 0)+1)
	if err := os.WriteFile(path, []byte(csvOf(x, nil)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.(RowSource).Matrix(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "changed on disk") {
		t.Fatalf("mutated shard: err = %v", err)
	}
}

// TestOpenShardsFailureLeaksNothing: a failed ingest must join the
// accumulator's worker pool — repeated failed opens may not accumulate
// goroutines (each would pin a d×d partial for the process lifetime).
func TestOpenShardsFailureLeaksNothing(t *testing.T) {
	ragged := writeFile(t, "ragged.csv", strings.Repeat("1,2,3\n", 600)+"4,5\n")
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		if _, err := OpenDataset(ragged, DatasetOptions{Workers: 4}); err == nil {
			t.Fatal("ragged shard accepted")
		}
	}
	// Give any straggling goroutine a beat to exit, then compare with
	// slack for unrelated runtime noise: 20 failed opens at Workers=4
	// would otherwise leak 80.
	time.Sleep(50 * time.Millisecond)
	if after := runtime.NumGoroutine(); after > before+10 {
		t.Fatalf("goroutines grew from %d to %d across failed opens", before, after)
	}
}

// TestOpenShardsErrors: missing files, empty shard lists and name
// mismatches are rejected at open time.
func TestOpenShardsErrors(t *testing.T) {
	if _, err := OpenShards(nil, DatasetOptions{}); err == nil {
		t.Error("no shards accepted")
	}
	if _, err := OpenDataset(filepath.Join(t.TempDir(), "nope.csv"), DatasetOptions{}); err == nil {
		t.Error("missing file accepted")
	}
	path := writeFile(t, "two.csv", "1,2\n3,4\n")
	if _, err := OpenDataset(path, DatasetOptions{Names: []string{"only-one"}}); err == nil ||
		!strings.Contains(err.Error(), "names") {
		t.Errorf("name-width mismatch: err = %v", err)
	}
	ragged := writeFile(t, "ragged.csv", "1,2\n3\n")
	if _, err := OpenDataset(ragged, DatasetOptions{}); err == nil {
		t.Error("ragged shard accepted")
	}
}

// TestLearnDatasetStreamingBoundedMemory drives a ~1e6-row CSV through
// the full OpenDataset → LearnDataset pipeline. The streaming reader
// holds O(workers·d²) state — the rows are never materialized (the
// fileDataset only re-reads on an explicit RowSource request, which
// this learn never makes) — so this runs in a few tens of MB however
// large n grows. Gated behind -short because writing and parsing the
// ~40 MB file takes a few seconds.
func TestLearnDatasetStreamingBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("1e6-row ingest skipped in -short mode")
	}
	const n, d = 1_000_000, 6
	truth, small := testData(t, 61, d, 1)
	_ = small
	// Stream the CSV to disk without holding the matrix: sample rows
	// from the LSEM in batches.
	path := filepath.Join(t.TempDir(), "big.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 10_000
	for off := 0; off < n; off += batch {
		xb := SampleLSEM(int64(100+off), truth, batch, GaussianNoise)
		if _, err := f.WriteString(csvOf(xb, nil)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	ds, err := OpenDataset(path, DatasetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if gotN, gotD := ds.Dims(); gotN != n || gotD != d {
		t.Fatalf("dims (%d,%d), want (%d,%d)", gotN, gotD, n, d)
	}
	spec, err := New(WithLambda(0.1), WithEpsilon(1e-3), WithMaxOuter(4), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := spec.LearnDataset(context.Background(), Centered(ds))
	if err != nil {
		t.Fatal(err)
	}
	if res.Weights == nil || res.InnerIters == 0 {
		t.Fatalf("no learn happened: %+v", res)
	}
	// The planted structure must be recoverable from this much data.
	m, _ := EvaluateBest(truth.G, res.Weights, nil)
	if m.F1 < 0.8 {
		t.Errorf("F1 = %.2f on 1e6 samples of a d=6 chain, want >= 0.8", m.F1)
	}
}
