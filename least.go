// Package least is a pure-Go implementation of LEAST, the scalable
// Bayesian-network structure learning algorithm of
//
//	Zhu, Pfadler, Wu, Han, Yang, Ye, Qian, Zhou, Cui:
//	"Efficient and Scalable Structure Learning for Bayesian Networks:
//	 Algorithms and Applications", ICDE 2021 (arXiv:2012.03540).
//
// LEAST learns the DAG of a linear structural equation model from an
// n×d sample matrix by continuous optimization, replacing the O(d³)
// matrix-exponential acyclicity constraint of NOTEARS with an upper
// bound on the spectral radius of W∘W that is computable — together
// with its gradient — in near-linear time and space in the number of
// non-zero weights. That is what lets it scale from the hundreds of
// nodes earlier continuous methods handle to 10⁵+ variables.
//
// # Quick start
//
//	X := ...                        // *least.Matrix, n samples × d variables
//	spec, err := least.New()        // MethodLEAST with the paper defaults
//	if err != nil { ... }
//	res, err := spec.LearnDataset(ctx, least.FromMatrix(X, nil))
//	if err != nil { ... }
//	g := res.Graph(0.3)             // threshold |W| > 0.3 into a DAG
//
// Spec is the single entry point: least.New(...) builds an explicit,
// validated configuration (unset fields mean "paper default"; explicit
// zeros are honored) and Spec.LearnDataset runs any of the three
// registered methods — MethodLEAST, MethodLEASTSP (the O(nnz) large-d
// mode) and MethodNOTEARS (the baseline) — with uniform input
// validation, context cancellation and per-iteration progress
// callbacks. See DESIGN.md §5 for the API rationale.
//
// Data enters through the Dataset interface: FromMatrix, FromCSR and
// FromStats adapt in-memory sources, while OpenDataset/OpenShards
// stream CSV/JSONL files into sufficient statistics in one
// bounded-memory pass — the dense methods then learn in per-iteration
// time independent of the number of rows, and the rows are never
// materialized (DESIGN.md §6). Spec.Learn(ctx, x) remains as a
// deprecated matrix shorthand with its historical behavior.
//
// Three runnable examples cover the common entry points: the package
// example Example (quickstart) for the generate → learn → threshold
// loop, ExampleSpec_Learn_sparse for the LEAST-SP large-d mode, and
// ExampleEvaluateBest for the paper's §V-A threshold-grid scoring
// protocol.
//
// The package also ships random DAG/LSEM workload generators
// (GenerateDAG, SampleLSEM) and the full recovery-metric suite
// (Evaluate) used to reproduce the paper's benchmark tables; the
// application pipelines of §VI (production monitoring, gene networks,
// recommendations) live under examples/ and cmd/leastbench. The
// cmd/leastd serving daemon builds on Spec.Learn's cancellation and
// progress contract. The pre-Spec entry points — Learn, LearnCtx,
// Baseline and the Options struct — remain as deprecated wrappers and
// keep behaving exactly as before.
package least

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/randx"
	"repro/internal/sparse"
)

// Matrix is the dense row-major sample/weight matrix type of the
// public API (an alias of the internal kernel type, so no copying
// happens at the boundary).
type Matrix = mat.Dense

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix { return mat.NewDense(rows, cols) }

// NewMatrixData wraps a row-major backing slice without copying.
func NewMatrixData(rows, cols int, data []float64) *Matrix {
	return mat.NewDenseData(rows, cols, data)
}

// Graph is the directed-graph type returned by thresholding learned
// weights.
type Graph = graph.Digraph

// Options configures a Learn call. Zero-valued fields fall back to the
// paper's defaults; start from Defaults().
//
// Deprecated: Options is the legacy configuration shim. Because the
// zero value of every field means "paper default", an explicit
// Lambda=0, Alpha=0 or Seed=0 is inexpressible and out-of-range values
// pass through unchecked. New code should build a Spec with New(...)
// and functional options, which distinguishes unset from zero and
// validates. Options.Spec / Options.BaselineSpec convert existing
// values losslessly (preserving the zero-means-default reading).
type Options struct {
	// K is the number of similarity-scaling rounds in the spectral
	// bound δ^(k) (paper default 5).
	K int
	// Alpha balances row vs column sums in the bound (paper: 0.9).
	Alpha float64
	// Lambda is the L1 regularization weight λ.
	Lambda float64
	// Epsilon is the acyclicity tolerance ε.
	Epsilon float64
	// Threshold is the in-loop weight filter θ.
	Threshold float64
	// BatchSize enables mini-batching when in (0, n).
	BatchSize int
	// Sparse selects the LEAST-SP learner: W lives on an O(nnz)
	// candidate support (density InitDensity) and every step runs in
	// time/space proportional to nnz, not d². Use for large d.
	Sparse bool
	// InitDensity is ζ, the candidate-support density for Sparse mode.
	InitDensity float64
	// MaxOuter / MaxInner bound the augmented-Lagrangian loop.
	MaxOuter, MaxInner int
	// ExactTermination additionally checks the exact NOTEARS h(W)
	// after each outer iteration and stops at h ≤ Epsilon — the
	// paper's §V-A fairness termination. O(d³) per check in dense
	// mode (Hutchinson-estimated in sparse mode).
	ExactTermination bool
	// Parallelism bounds the worker fan-out of the sparse execution
	// backend (the CSR spectral-bound kernels, the sparse loss, and
	// the Hutchinson trace matvecs): 0 picks runtime.GOMAXPROCS, 1
	// forces single-threaded execution, n > 1 caps the pool at n
	// workers. Problems below the backend's work threshold run
	// serially regardless, so small graphs pay no goroutine overhead.
	// Results are deterministic for a fixed worker count; set 1 for
	// bit-exact reproducibility across machines with different core
	// counts.
	Parallelism int
	// SinkNodes constrains the listed variables to have no outgoing
	// edges (pure effects). Dense mode only.
	SinkNodes []int
	// Seed makes runs reproducible.
	Seed int64
}

// Defaults returns the paper's parameter settings (§V) — the same
// values an all-unset Spec resolves to.
func Defaults() Options {
	o := core.DefaultOptions()
	return Options{
		K:           o.K,
		Alpha:       o.Alpha,
		Lambda:      o.Lambda,
		Epsilon:     1e-4,
		Threshold:   o.Threshold,
		InitDensity: o.InitDensity,
		MaxOuter:    32,
		MaxInner:    o.MaxInner,
		Seed:        1,
	}
}

func (o Options) internal() core.Options {
	c := core.DefaultOptions()
	if o.K > 0 {
		c.K = o.K
	}
	if o.Alpha > 0 {
		c.Alpha = o.Alpha
	}
	if o.Lambda > 0 {
		c.Lambda = o.Lambda
	}
	if o.Epsilon > 0 {
		c.Epsilon = o.Epsilon
	}
	c.Threshold = o.Threshold
	c.BatchSize = o.BatchSize
	if o.InitDensity > 0 {
		c.InitDensity = o.InitDensity
	}
	if o.MaxOuter > 0 {
		c.MaxOuter = o.MaxOuter
	}
	if o.MaxInner > 0 {
		c.MaxInner = o.MaxInner
	}
	c.CheckH = o.ExactTermination
	c.Parallelism = o.Parallelism
	c.SinkNodes = o.SinkNodes
	if o.Seed != 0 {
		c.Seed = o.Seed
	}
	return c
}

// Result is a learned structure.
type Result struct {
	// Weights is the learned weight matrix (nil in sparse mode when d
	// is too large to materialize densely — use SparseWeights).
	Weights *Matrix
	// SparseWeights is set in sparse mode.
	SparseWeights *sparse.CSR
	// Delta is the final spectral-bound value; H the final exact (or
	// estimated) NOTEARS constraint when ExactTermination was set.
	Delta, H float64
	// Converged reports whether the ε-tolerance was met.
	Converged bool
	// OuterIters / InnerIters count the optimization work.
	OuterIters, InnerIters int
}

// Graph thresholds the learned weights at |w| > tau into a directed
// graph.
func (r *Result) Graph(tau float64) *Graph {
	if r.Weights != nil {
		return metrics.GraphFromWeights(r.Weights, tau)
	}
	if r.SparseWeights == nil {
		return graph.New(0)
	}
	d := r.SparseWeights.Rows()
	g := graph.New(d)
	w := r.SparseWeights
	for i := 0; i < d; i++ {
		for p := w.RowPtr[i]; p < w.RowPtr[i+1]; p++ {
			if j := w.ColIdx[p]; j != i {
				if v := w.Val[p]; v > tau || v < -tau {
					g.AddEdge(i, j)
				}
			}
		}
	}
	return g
}

// Learn runs LEAST on the n×d sample matrix x. Each column is one
// variable; each row one i.i.d. observation.
//
// Deprecated: use New(...) and Spec.Learn, which serve all three
// methods through one validated entry point. Learn remains a thin
// wrapper over o.Spec() and behaves exactly as it always has, except
// that out-of-range option values the legacy API silently accepted
// (e.g. Alpha > 1) are now rejected with an error.
func Learn(x *Matrix, o Options) (*Result, error) {
	return LearnCtx(context.Background(), x, o, nil)
}

// Progress is a point-in-time snapshot of a running LearnCtx call,
// delivered to the progress callback after every inner iteration.
type Progress struct {
	// Solves counts inner solves started (outer iterations including
	// the augmented-Lagrangian ρ-escalation re-solves); Inner counts
	// cumulative inner iterations across all solves.
	Solves, Inner int
	// Delta is the current normalized spectral-bound value δ(W)/d.
	Delta float64
	// Elapsed is the wall-clock time since the learn started.
	Elapsed time.Duration
}

// LearnCtx is Learn under a context with optional progress reporting.
// Cancellation is observed within one inner iteration: when ctx is
// cancelled mid-run LearnCtx abandons the optimization and returns
// (nil, ctx.Err()). progress, when non-nil, is invoked on the
// learner's goroutine after every inner iteration and must be fast and
// non-blocking.
//
// Deprecated: use Spec.Learn with WithProgress, which carries the same
// contract for all three methods. LearnCtx remains a thin wrapper over
// o.Spec().
func LearnCtx(ctx context.Context, x *Matrix, o Options, progress func(Progress)) (*Result, error) {
	s := o.Spec()
	if progress != nil {
		s.progress = progress
	}
	return s.Learn(ctx, x)
}

// Baseline runs the NOTEARS comparison algorithm (Zheng et al. 2018)
// with the same loss and outer loop as Learn but the O(d³)
// matrix-exponential constraint. Only the options the baseline shares
// with Learn are honored (λ, ε, θ, B, iteration bounds, Seed,
// Parallelism); Seed = 0 means the default seed, as in Learn.
//
// Deprecated: use Spec.Learn with WithMethod(MethodNOTEARS), which
// adds cancellation and progress reporting the legacy entry point
// never had. Baseline remains a thin wrapper over o.BaselineSpec().
func Baseline(x *Matrix, o Options) (*Result, error) {
	return o.BaselineSpec().Learn(context.Background(), x)
}

// GraphModel selects a random-graph family for GenerateDAG.
type GraphModel int

// Random-graph families of the paper's benchmark (§V-A).
const (
	// ErdosRenyi generates ER graphs ("ER-2" with MeanDegree 2).
	ErdosRenyi GraphModel = iota
	// ScaleFree generates Barabási–Albert graphs ("SF-4").
	ScaleFree
)

// NoiseKind selects the LSEM additive-noise family.
type NoiseKind int

// Noise families of the paper's benchmark (§V-A).
const (
	GaussianNoise NoiseKind = iota
	ExponentialNoise
	GumbelNoise
)

func (n NoiseKind) internal() randx.Noise {
	switch n {
	case ExponentialNoise:
		return randx.Exponential
	case GumbelNoise:
		return randx.Gumbel
	default:
		return randx.Gaussian
	}
}

// TrueDAG couples a ground-truth graph with its weighted adjacency.
type TrueDAG struct {
	G *Graph
	W *Matrix
}

// GenerateDAG samples a random weighted DAG from the paper's benchmark
// generator: model topology with the given mean total degree and edge
// weights uniform on ±[0.5, 2].
func GenerateDAG(seed int64, model GraphModel, d, meanDegree int) *TrueDAG {
	rng := randx.New(seed)
	m := gen.ER
	if model == ScaleFree {
		m = gen.SF
	}
	dag := gen.RandomDAG(rng, m, d, meanDegree, 0.5, 2)
	return &TrueDAG{G: dag.G, W: dag.W}
}

// SampleLSEM draws n i.i.d. samples from the linear SEM defined by the
// DAG with the chosen noise family.
func SampleLSEM(seed int64, dag *TrueDAG, n int, noise NoiseKind) *Matrix {
	rng := randx.New(seed)
	return gen.SampleLSEM(rng, &gen.DAG{G: dag.G, W: dag.W}, n, noise.internal())
}

// Metrics is the paper's structure-recovery metric row (Table III).
type Metrics struct {
	PredictedEdges, TruePositives int
	FDR, TPR, FPR                 float64
	SHD                           int
	F1, AUCROC                    float64
}

// Evaluate scores learned weights against a ground-truth graph at edge
// threshold tau, using the NOTEARS reversed-edge accounting.
func Evaluate(truth *Graph, w *Matrix, tau float64) Metrics {
	a := metrics.Evaluate(truth, w, tau)
	return Metrics{
		PredictedEdges: a.PredEdges,
		TruePositives:  a.TP,
		FDR:            a.FDR,
		TPR:            a.TPR,
		FPR:            a.FPR,
		SHD:            a.SHD,
		F1:             a.F1,
		AUCROC:         a.AUC,
	}
}

// EvaluateBest replays the paper's §V-A protocol: evaluate every
// threshold in taus and return the best-F1 row together with the
// winning threshold. Passing nil uses the paper's grid {0.1..0.5}.
func EvaluateBest(truth *Graph, w *Matrix, taus []float64) (Metrics, float64) {
	if taus == nil {
		taus = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	}
	a, tau := metrics.BestOverThresholds(truth, w, taus)
	return Metrics{
		PredictedEdges: a.PredEdges,
		TruePositives:  a.TP,
		FDR:            a.FDR,
		TPR:            a.TPR,
		FPR:            a.FPR,
		SHD:            a.SHD,
		F1:             a.F1,
		AUCROC:         a.AUC,
	}, tau
}

// Center subtracts each column's mean in place (recommended
// preprocessing for real data so the zero-intercept LSEM applies) and
// returns x for chaining.
func Center(x *Matrix) *Matrix {
	n := x.Rows()
	if n == 0 {
		return x
	}
	means := x.ColSums()
	for j := range means {
		means[j] /= float64(n)
	}
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] -= means[j]
		}
	}
	return x
}
