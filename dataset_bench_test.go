package least

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/csvio"
	"repro/internal/loss"
)

// The PR-4 benchmark pair behind `make bench-json`: streaming ingest
// throughput (the one-pass CSV → sufficient-statistics pipeline) and
// the Gram-vs-dense per-iteration loss cost, which is the tentpole's
// perf claim — after ingest, iteration cost must not grow with n.

func benchCSV(n, d int) string {
	var sb strings.Builder
	truth := GenerateDAG(1, ErdosRenyi, d, 2)
	const batch = 4096
	for off := 0; off < n; off += batch {
		rows := min(batch, n-off)
		x := SampleLSEM(int64(off+2), truth, rows, GaussianNoise)
		for i := 0; i < rows; i++ {
			row := x.Row(i)
			for j, v := range row {
				if j > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// BenchmarkDatasetIngestCSV measures the bounded-memory streaming pass
// (parse + fingerprint + parallel Gram accumulation) in bytes/sec.
func BenchmarkDatasetIngestCSV(b *testing.B) {
	doc := benchCSV(20_000, 16)
	for _, workers := range []int{1, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(doc)))
			for i := 0; i < b.N; i++ {
				in := csvio.NewStatsIngest(workers)
				if err := in.CSV(strings.NewReader(doc), false); err != nil {
					b.Fatal(err)
				}
				if _, _, err := in.Finish(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLossDenseRows is the legacy row-backed loss evaluation: one
// X·W plus one Xᵀ·R, O(n·d²) per iteration — the cost that used to
// grow with every sample ingested.
func BenchmarkLossDenseRows(b *testing.B) {
	for _, n := range []int{2_048, 16_384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			truth := GenerateDAG(1, ErdosRenyi, 32, 2)
			x := SampleLSEM(2, truth, n, GaussianNoise)
			w := truth.W.Clone()
			ls := loss.LeastSquares{Lambda: 0.1, Workers: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ls.ValueGrad(w, x)
			}
		})
	}
}

// BenchmarkLossGram is the sufficient-statistics evaluation of the
// same loss: O(d³) however many rows were ingested, so the n=2k and
// n=16k series should time identically. It runs through the reusable
// evaluator the learners use (loss.GramEval): after the warm-up call
// the steady state must be 0 allocs/op — the G·W product lands in the
// evaluator's workspace and the tiled kernel's packing buffer comes
// from a pool (DESIGN.md §9).
func BenchmarkLossGram(b *testing.B) {
	for _, n := range []int{2_048, 16_384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			truth := GenerateDAG(1, ErdosRenyi, 32, 2)
			x := SampleLSEM(2, truth, n, GaussianNoise)
			w := truth.W.Clone()
			ls := loss.LeastSquares{Lambda: 0.1, Workers: 1}
			st, err := FromMatrix(x, nil).Stats(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			ev := loss.NewGramEval(ls, st)
			ev.ValueGrad(w) // warm the workspace before the timer
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev.ValueGrad(w)
			}
		})
	}
}
