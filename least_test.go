package least

import (
	"math"
	"testing"
)

func TestLearnEndToEnd(t *testing.T) {
	truth := GenerateDAG(3, ErdosRenyi, 20, 2)
	x := SampleLSEM(4, truth, 200, GaussianNoise)
	o := Defaults()
	o.Lambda = 0.2
	o.Epsilon = 1e-3
	o.ExactTermination = true
	res, err := Learn(x, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weights == nil {
		t.Fatal("no weights")
	}
	m, tau := EvaluateBest(truth.G, res.Weights, nil)
	if m.F1 < 0.7 {
		t.Fatalf("F1 = %.3f", m.F1)
	}
	g := res.Graph(tau)
	if !g.IsDAG() {
		t.Fatal("result graph has a cycle")
	}
}

func TestLearnSparseMode(t *testing.T) {
	truth := GenerateDAG(5, ErdosRenyi, 40, 2)
	x := SampleLSEM(6, truth, 400, ExponentialNoise)
	o := Defaults()
	o.Sparse = true
	o.Lambda = 0.2
	o.Epsilon = 1e-3
	o.InitDensity = 0.15
	o.Threshold = 1e-3
	o.MaxOuter = 10
	res, err := Learn(x, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.SparseWeights == nil {
		t.Fatal("sparse mode must set SparseWeights")
	}
	g := res.Graph(0.3)
	if g.N() != 40 {
		t.Fatal("graph node count")
	}
}

func TestLearnInputValidation(t *testing.T) {
	if _, err := Learn(nil, Defaults()); err == nil {
		t.Fatal("nil matrix accepted")
	}
	if _, err := Learn(NewMatrix(0, 0), Defaults()); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := Learn(NewMatrix(5, 1), Defaults()); err == nil {
		t.Fatal("single variable accepted")
	}
	bad := NewMatrix(2, 2)
	bad.Set(0, 0, math.NaN())
	if _, err := Learn(bad, Defaults()); err == nil {
		t.Fatal("NaN matrix accepted")
	}
}

func TestBaselineEndToEnd(t *testing.T) {
	truth := GenerateDAG(7, ErdosRenyi, 15, 2)
	x := SampleLSEM(8, truth, 150, GaussianNoise)
	o := Defaults()
	o.Lambda = 0.2
	o.Epsilon = 1e-3
	o.MaxOuter = 12
	res, err := Baseline(x, o)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := EvaluateBest(truth.G, res.Weights, nil)
	if m.F1 < 0.7 {
		t.Fatalf("baseline F1 = %.3f", m.F1)
	}
}

func TestGenerateDAGShapes(t *testing.T) {
	for _, model := range []GraphModel{ErdosRenyi, ScaleFree} {
		dag := GenerateDAG(1, model, 30, 4)
		if dag.G.N() != 30 {
			t.Fatal("node count")
		}
		if !dag.G.IsDAG() {
			t.Fatal("cyclic")
		}
		if dag.W.Rows() != 30 || dag.W.Cols() != 30 {
			t.Fatal("weight shape")
		}
	}
}

func TestSampleLSEMNoiseKinds(t *testing.T) {
	dag := GenerateDAG(2, ErdosRenyi, 10, 2)
	for _, nk := range []NoiseKind{GaussianNoise, ExponentialNoise, GumbelNoise} {
		x := SampleLSEM(3, dag, 50, nk)
		if x.Rows() != 50 || x.Cols() != 10 {
			t.Fatal("sample shape")
		}
		if x.HasNaN() {
			t.Fatal("NaN in samples")
		}
	}
}

func TestEvaluateAgainstKnownAnswer(t *testing.T) {
	dag := GenerateDAG(9, ErdosRenyi, 12, 2)
	// Perfect weights: the truth itself.
	m := Evaluate(dag.G, dag.W, 0.1)
	if m.F1 != 1 || m.SHD != 0 || m.FDR != 0 {
		t.Fatalf("self-evaluation: %+v", m)
	}
	if m.AUCROC != 1 {
		t.Fatalf("AUC = %g", m.AUCROC)
	}
}

func TestCenterRemovesMeans(t *testing.T) {
	x := NewMatrixData(2, 2, []float64{1, 10, 3, 30})
	Center(x)
	if x.At(0, 0) != -1 || x.At(1, 0) != 1 || x.At(0, 1) != -10 {
		t.Fatalf("Center: %v", x)
	}
}

func TestSeedReproducibility(t *testing.T) {
	truth := GenerateDAG(11, ScaleFree, 15, 4)
	x := SampleLSEM(12, truth, 100, GumbelNoise)
	o := Defaults()
	o.Epsilon = 1e-2
	o.MaxOuter = 4
	a, err := Learn(x, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Learn(x, o)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Weights.EqualApprox(b.Weights, 0) {
		t.Fatal("same options+seed must reproduce identical weights")
	}
}

func TestSinkNodesRespected(t *testing.T) {
	truth := GenerateDAG(13, ErdosRenyi, 12, 2)
	x := SampleLSEM(14, truth, 120, GaussianNoise)
	o := Defaults()
	o.Epsilon = 1e-2
	o.MaxOuter = 6
	o.SinkNodes = []int{0, 5}
	res, err := Learn(x, o)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 12; j++ {
		if res.Weights.At(0, j) != 0 || res.Weights.At(5, j) != 0 {
			t.Fatal("sink node grew an outgoing edge")
		}
	}
}
