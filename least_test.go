package least

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
)

func TestLearnEndToEnd(t *testing.T) {
	truth := GenerateDAG(3, ErdosRenyi, 20, 2)
	x := SampleLSEM(4, truth, 200, GaussianNoise)
	o := Defaults()
	o.Lambda = 0.2
	o.Epsilon = 1e-3
	o.ExactTermination = true
	res, err := Learn(x, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weights == nil {
		t.Fatal("no weights")
	}
	m, tau := EvaluateBest(truth.G, res.Weights, nil)
	if m.F1 < 0.7 {
		t.Fatalf("F1 = %.3f", m.F1)
	}
	g := res.Graph(tau)
	if !g.IsDAG() {
		t.Fatal("result graph has a cycle")
	}
}

func TestLearnSparseMode(t *testing.T) {
	truth := GenerateDAG(5, ErdosRenyi, 40, 2)
	x := SampleLSEM(6, truth, 400, ExponentialNoise)
	o := Defaults()
	o.Sparse = true
	o.Lambda = 0.2
	o.Epsilon = 1e-3
	o.InitDensity = 0.15
	o.Threshold = 1e-3
	o.MaxOuter = 10
	res, err := Learn(x, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.SparseWeights == nil {
		t.Fatal("sparse mode must set SparseWeights")
	}
	g := res.Graph(0.3)
	if g.N() != 40 {
		t.Fatal("graph node count")
	}
}

func TestLearnCtxCancelMidRunAndProgress(t *testing.T) {
	truth := GenerateDAG(21, ErdosRenyi, 40, 2)
	x := SampleLSEM(22, truth, 300, GaussianNoise)
	o := Defaults()
	o.Epsilon = 1e-12 // unreachable: without cancellation this runs for a long time
	o.MaxInner = 2000

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ticks int
	res, err := LearnCtx(ctx, x, o, func(p Progress) {
		ticks++
		if p.Inner != ticks || p.Solves == 0 {
			t.Errorf("progress out of order: %+v at tick %d", p, ticks)
		}
		if ticks == 5 {
			cancel() // cancel from inside the run, mid-inner-solve
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled learn must not return a result")
	}
	if ticks > 6 {
		t.Fatalf("learner kept iterating %d ticks after cancellation", ticks)
	}

	// Sparse learner honours the same contract.
	o.Sparse = true
	o.InitDensity = 0.1
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	ticks = 0
	_, err = LearnCtx(ctx2, x, o, func(Progress) {
		ticks++
		if ticks == 3 {
			cancel2()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sparse err = %v, want context.Canceled", err)
	}

	// A context cancelled before the call never reports a completion.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	if _, err := LearnCtx(pre, x, o, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ctx: err = %v, want context.Canceled", err)
	}

	// A never-cancelled context changes nothing about the result path
	// (small problem: this runs two full learns).
	truth2 := GenerateDAG(23, ErdosRenyi, 15, 2)
	x2 := SampleLSEM(24, truth2, 100, GaussianNoise)
	o2 := Defaults()
	o2.Epsilon = 1e-2
	o2.MaxOuter = 4
	a, err := LearnCtx(context.Background(), x2, o2, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Learn(x2, o2)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Weights.EqualApprox(b.Weights, 0) {
		t.Fatal("LearnCtx and Learn must agree bit-for-bit")
	}
}

func TestLearnInputValidation(t *testing.T) {
	if _, err := Learn(nil, Defaults()); err == nil {
		t.Fatal("nil matrix accepted")
	}
	if _, err := Learn(NewMatrix(0, 0), Defaults()); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := Learn(NewMatrix(5, 1), Defaults()); err == nil {
		t.Fatal("single variable accepted")
	}
	bad := NewMatrix(2, 2)
	bad.Set(0, 0, math.NaN())
	if _, err := Learn(bad, Defaults()); err == nil {
		t.Fatal("NaN matrix accepted")
	}
}

func TestBaselineInputValidation(t *testing.T) {
	// Baseline historically accepted NaN/Inf matrices that Learn
	// rejects; both entry points now share the same validation.
	bad := NewMatrix(2, 2)
	bad.Set(0, 0, math.NaN())
	if _, err := Baseline(bad, Defaults()); err == nil {
		t.Fatal("NaN matrix accepted by Baseline")
	}
	bad.Set(0, 0, math.Inf(-1))
	if _, err := Baseline(bad, Defaults()); err == nil {
		t.Fatal("Inf matrix accepted by Baseline")
	}
	if _, err := Baseline(nil, Defaults()); err == nil {
		t.Fatal("nil matrix accepted by Baseline")
	}
}

func TestBaselineEndToEnd(t *testing.T) {
	truth := GenerateDAG(7, ErdosRenyi, 15, 2)
	x := SampleLSEM(8, truth, 150, GaussianNoise)
	o := Defaults()
	o.Lambda = 0.2
	o.Epsilon = 1e-3
	o.MaxOuter = 12
	res, err := Baseline(x, o)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := EvaluateBest(truth.G, res.Weights, nil)
	if m.F1 < 0.7 {
		t.Fatalf("baseline F1 = %.3f", m.F1)
	}
}

func TestGenerateDAGShapes(t *testing.T) {
	for _, model := range []GraphModel{ErdosRenyi, ScaleFree} {
		dag := GenerateDAG(1, model, 30, 4)
		if dag.G.N() != 30 {
			t.Fatal("node count")
		}
		if !dag.G.IsDAG() {
			t.Fatal("cyclic")
		}
		if dag.W.Rows() != 30 || dag.W.Cols() != 30 {
			t.Fatal("weight shape")
		}
	}
}

func TestSampleLSEMNoiseKinds(t *testing.T) {
	dag := GenerateDAG(2, ErdosRenyi, 10, 2)
	for _, nk := range []NoiseKind{GaussianNoise, ExponentialNoise, GumbelNoise} {
		x := SampleLSEM(3, dag, 50, nk)
		if x.Rows() != 50 || x.Cols() != 10 {
			t.Fatal("sample shape")
		}
		if x.HasNaN() {
			t.Fatal("NaN in samples")
		}
	}
}

func TestEvaluateAgainstKnownAnswer(t *testing.T) {
	dag := GenerateDAG(9, ErdosRenyi, 12, 2)
	// Perfect weights: the truth itself.
	m := Evaluate(dag.G, dag.W, 0.1)
	if m.F1 != 1 || m.SHD != 0 || m.FDR != 0 {
		t.Fatalf("self-evaluation: %+v", m)
	}
	if m.AUCROC != 1 {
		t.Fatalf("AUC = %g", m.AUCROC)
	}
}

func TestCenterRemovesMeans(t *testing.T) {
	x := NewMatrixData(2, 2, []float64{1, 10, 3, 30})
	Center(x)
	if x.At(0, 0) != -1 || x.At(1, 0) != 1 || x.At(0, 1) != -10 {
		t.Fatalf("Center: %v", x)
	}
}

func TestSeedReproducibility(t *testing.T) {
	truth := GenerateDAG(11, ScaleFree, 15, 4)
	x := SampleLSEM(12, truth, 100, GumbelNoise)
	o := Defaults()
	o.Epsilon = 1e-2
	o.MaxOuter = 4
	a, err := Learn(x, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Learn(x, o)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Weights.EqualApprox(b.Weights, 0) {
		t.Fatal("same options+seed must reproduce identical weights")
	}
}

func TestSinkNodesRespected(t *testing.T) {
	truth := GenerateDAG(13, ErdosRenyi, 12, 2)
	x := SampleLSEM(14, truth, 120, GaussianNoise)
	o := Defaults()
	o.Epsilon = 1e-2
	o.MaxOuter = 6
	o.SinkNodes = []int{0, 5}
	res, err := Learn(x, o)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 12; j++ {
		if res.Weights.At(0, j) != 0 || res.Weights.At(5, j) != 0 {
			t.Fatal("sink node grew an outgoing edge")
		}
	}
}

// --- Runnable examples (linked from the package comment) ---

// Example_quickstart is the generate → learn → threshold loop of the
// package comment: sample an ER-2 ground truth, learn it back through
// the Spec entry point, and read the result off as a DAG.
func Example_quickstart() {
	truth := GenerateDAG(3, ErdosRenyi, 20, 2)
	x := SampleLSEM(4, truth, 200, GaussianNoise)

	spec, err := New(
		WithLambda(0.2),
		WithEpsilon(1e-3),
	)
	if err != nil {
		panic(err)
	}
	res, err := spec.Learn(context.Background(), x)
	if err != nil {
		panic(err)
	}

	g := res.Graph(0.3) // threshold |W| > 0.3 into a directed graph
	fmt.Println("nodes:", g.N(), "acyclic:", g.IsDAG())
	// Output: nodes: 20 acyclic: true
}

// ExampleSpec_Learn_sparse selects MethodLEASTSP: the weight matrix
// lives on a sparse candidate support and every step costs O(nnz)
// rather than O(d²) — the mode that scales to 10⁵ variables.
func ExampleSpec_Learn_sparse() {
	truth := GenerateDAG(5, ErdosRenyi, 40, 2)
	x := SampleLSEM(6, truth, 400, GaussianNoise)

	spec, err := New(
		WithMethod(MethodLEASTSP),
		WithInitDensity(0.15), // candidate-support density ζ
		WithThreshold(1e-3),
		WithLambda(0.2),
		WithEpsilon(1e-3),
		WithMaxOuter(8),
	)
	if err != nil {
		panic(err)
	}
	res, err := spec.Learn(context.Background(), x)
	if err != nil {
		panic(err)
	}

	fmt.Println("sparse weights:", res.SparseWeights != nil,
		"nodes:", res.Graph(0.3).N())
	// Output: sparse weights: true nodes: 40
}

// ExampleEvaluateBest replays the paper's §V-A protocol: score a
// weight matrix against the ground truth at every threshold in the
// grid and keep the best-F1 row. Evaluating the truth against itself
// is the sanity ceiling: a perfect score.
func ExampleEvaluateBest() {
	truth := GenerateDAG(9, ErdosRenyi, 12, 2)

	m, _ := EvaluateBest(truth.G, truth.W, nil) // nil = paper grid {0.1..0.5}
	fmt.Printf("F1=%.2f SHD=%d FDR=%.2f\n", m.F1, m.SHD, m.FDR)
	// Output: F1=1.00 SHD=0 FDR=0.00
}
