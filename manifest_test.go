package least

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadManifest(t *testing.T) {
	doc := `
{"id": "a", "in": ["x.csv"], "header": true}

# a comment line between tasks
{"id": "b", "csv": "1,2\n3,4\n", "spec": {"method": "notears", "lambda": 0.05}}
{"samples": [[1, 2], [3, 4]], "center": true}
`
	tasks, err := ReadManifest(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 3 {
		t.Fatalf("got %d tasks, want 3", len(tasks))
	}
	if tasks[0].ID != "a" || len(tasks[0].In) != 1 || !tasks[0].Header {
		t.Errorf("task 0: %+v", tasks[0])
	}
	if tasks[1].Spec == nil || tasks[1].Spec.Method() != MethodNOTEARS {
		t.Errorf("task 1 spec: %+v", tasks[1].Spec)
	}
	if !tasks[2].Center || tasks[2].Samples == nil {
		t.Errorf("task 2: %+v", tasks[2])
	}

	// Unknown keys are rejected with the line number.
	_, err = ReadManifest(strings.NewReader(`{"id": "x", "csv": "1,2\n"}` + "\n" + `{"speck": {}}`))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("unknown key: %v", err)
	}
	// One task per line, exactly: trailing content would silently drop
	// a network from the fleet.
	_, err = ReadManifest(strings.NewReader(`{"csv": "1,2\n"} {"csv": "3,4\n"}`))
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("concatenated objects: %v", err)
	}
	// So are empty manifests and broken JSON.
	if _, err := ReadManifest(strings.NewReader("\n# only comments\n")); err == nil {
		t.Error("empty manifest accepted")
	}
	if _, err := ReadManifest(strings.NewReader("{not json}")); err == nil {
		t.Error("broken JSON accepted")
	}
}

func TestManifestTaskValidate(t *testing.T) {
	good := []ManifestTask{
		{In: []string{"a.csv"}},
		{CSV: "1,2\n"},
		{Samples: [][]float64{{1, 2}}},
		{DatasetRef: "d00000001"},
		{CSV: "1,2\n", Spec: &Spec{}},
	}
	for i, task := range good {
		if err := task.Validate(); err != nil {
			t.Errorf("good task %d rejected: %v", i, err)
		}
	}
	bad := []ManifestTask{
		{},
		{ID: "no-source", Center: true},
		{In: []string{"a.csv"}, CSV: "1,2\n"},
		{Samples: [][]float64{{1, 2}}, DatasetRef: "d1"},
	}
	for i, task := range bad {
		if err := task.Validate(); err == nil {
			t.Errorf("bad task %d accepted: %+v", i, task)
		}
	}
	// An out-of-range spec fails task validation too.
	sp := &Spec{}
	if err := sp.UnmarshalJSON([]byte(`{"alpha": 1.5}`)); err == nil {
		if err := (&ManifestTask{CSV: "1,2\n", Spec: sp}).Validate(); err == nil {
			t.Error("out-of-range spec accepted by task validation")
		}
	}
}

func TestManifestTaskData(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "d.csv")
	if err := os.WriteFile(csvPath, []byte("A,B\n1,2\n3,4\n5,6\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// File shards stream through OpenShards.
	fileTask := ManifestTask{In: []string{csvPath}, Header: true}
	ds, err := fileTask.Data(DatasetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n, d := ds.Dims(); n != 3 || d != 2 {
		t.Fatalf("file task dims = (%d, %d)", n, d)
	}
	if names := ds.Names(); len(names) != 2 || names[0] != "A" {
		t.Fatalf("file task names = %v", ds.Names())
	}
	// Explicit names beat the header row for file sources too.
	named := ManifestTask{In: []string{csvPath}, Header: true, Names: []string{"P", "Q"}}
	dsNamed, err := named.Data(DatasetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if names := dsNamed.Names(); names[0] != "P" || names[1] != "Q" {
		t.Fatalf("file task explicit names = %v", names)
	}
	// NaN in a shard is a resolution failure, not a learner one.
	nanPath := filepath.Join(dir, "nan.csv")
	if err := os.WriteFile(nanPath, []byte("1,nan\n2,3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := (&ManifestTask{In: []string{nanPath}}).Data(DatasetOptions{}); err == nil {
		t.Error("NaN shard accepted at resolution")
	}

	// Inline CSV: explicit names beat the header row.
	csvTask := ManifestTask{CSV: "A,B\n1,2\n3,4\n", Header: true, Names: []string{"X", "Y"}}
	ds, err = csvTask.Data(DatasetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if names := ds.Names(); names[0] != "X" || names[1] != "Y" {
		t.Fatalf("inline csv names = %v", names)
	}

	// Inline samples; the inline and file forms of the same values
	// share a fingerprint, so batch dedup sees one identity.
	sampleTask := ManifestTask{Samples: [][]float64{{1, 2}, {3, 4}, {5, 6}}, Names: []string{"A", "B"}}
	ds2, err := sampleTask.Data(DatasetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Fingerprint() != ds.Fingerprint() {
		// ds is the inline-CSV task with names X,Y — rebuild with A,B.
		csvAB := ManifestTask{CSV: "1,2\n3,4\n5,6\n", Names: []string{"A", "B"}}
		dsAB, err := csvAB.Data(DatasetOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if ds2.Fingerprint() != dsAB.Fingerprint() {
			t.Error("inline samples and equivalent CSV disagree on fingerprint")
		}
	}

	// The learn actually runs off a manifest-opened dataset.
	spec, err := New(WithMaxOuter(1), WithMaxInner(5), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.LearnDataset(context.Background(), ds2); err != nil {
		t.Fatalf("learn from manifest data: %v", err)
	}

	// Failure modes: ragged samples, dataset_ref offline, bad file.
	if _, err := (&ManifestTask{Samples: [][]float64{{1, 2}, {3}}}).Data(DatasetOptions{}); err == nil {
		t.Error("ragged samples accepted")
	}
	if _, err := (&ManifestTask{DatasetRef: "d1"}).Data(DatasetOptions{}); err == nil {
		t.Error("dataset_ref resolved locally")
	}
	if _, err := (&ManifestTask{In: []string{filepath.Join(dir, "missing.csv")}}).Data(DatasetOptions{}); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := (&ManifestTask{}).Data(DatasetOptions{}); err == nil {
		t.Error("sourceless task accepted")
	}
}
