// MovieLens example: the §VI-C explainable-recommendation case study.
// Generates a synthetic rating matrix over a movie catalog with a
// planted item-to-item influence DAG, learns the structure with LEAST,
// and reproduces the paper's analyses: the Table IV top-edge list with
// relationship remarks, the blockbuster in/out-degree contrast, and
// the Fig 8 neighbourhood subgraph around Braveheart.
package main

import (
	"fmt"

	"repro/internal/movielens"
)

func main() {
	catalog := movielens.DefaultCatalog(150)
	fmt.Printf("catalog: %d movies, %d planted influence edges\n",
		len(catalog.Movies), len(catalog.Edges))

	ratings := movielens.Generate(catalog, movielens.DefaultGenOptions())
	fmt.Printf("ratings: %d users; most watched: %v\n\n",
		ratings.X.Rows(), ratings.MostWatched(3))

	net := movielens.Learn(ratings, movielens.DefaultLearnOptions())
	report := movielens.Evaluate(net, catalog)
	fmt.Printf("learned %d edges; Table-IV named pairs recovered: %d/10\n\n",
		report.LearnedEdges, report.NamedFound)

	fmt.Println("top learned edges (Table IV reproduction):")
	fmt.Printf("%-50s %-50s %8s %s\n", "link from", "link to", "weight", "remark")
	for _, e := range movielens.TopEdgesAnnotated(net, catalog, 10) {
		rel := string(e.Relation)
		if rel == "" {
			rel = "-"
		}
		fmt.Printf("%-50s %-50s %8.3f %s\n", e.From, e.To, e.Weight, rel)
	}

	blockbuster, niche := movielens.DegreeContrast(net, catalog)
	fmt.Printf("\nblockbuster avg (in − out) degree: %+.1f   niche avg: %+.1f\n", blockbuster, niche)
	fmt.Println("(§VI-C: blockbusters accumulate incoming links; niche titles send outgoing links)")

	center := catalog.Index("Braveheart (1995)")
	sub := net.Neighborhood(center, 2)
	fmt.Printf("\nFig-8 style neighbourhood around Braveheart: %d nodes, %d edges\n", sub.N(), sub.NumEdges())
	fmt.Print(sub.DOT())
}
