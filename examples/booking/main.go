// Booking-monitor example: the §VI-A production scenario. Simulates
// the Fliggy flight-booking funnel, injects the Table II incidents one
// per monitoring period, learns a Bayesian network from each window
// with LEAST, and prints the root-cause paths the detector reports —
// the near-real-time anomaly pipeline the paper deploys.
package main

import (
	"context"
	"fmt"

	"repro/internal/booking"
	"repro/internal/randx"
)

func main() {
	ctx := context.Background()
	rng := randx.New(2024)
	world := booking.DefaultWorld(rng)
	fmt.Printf("booking world: %d airlines, %d fare sources, %d agents, %d cities, %d intermediaries → %d BN variables\n",
		len(world.Airlines), len(world.FareSources), len(world.Agents),
		len(world.Cities), len(world.Intermediaries), world.NumVars())

	// A calm 24h baseline window.
	prev := booking.GenerateWindow(rng, world, nil, 4000)
	fmt.Printf("baseline window: %d bookings, step-3 error rate %.2f%%\n\n",
		len(prev.Records), 100*prev.ErrorRate(booking.StepReserve))

	for _, incident := range booking.TableIIScripts(world) {
		fmt.Printf("=== period with incident %q (%s, step %d) ===\n",
			incident.Name, incident.Category, incident.Step+1)
		alerts, net, cur, err := booking.MonitorPeriod(
			ctx, rng, world, []*booking.Incident{incident}, prev, 4000,
			booking.DefaultLearnOptions(), 1e-3)
		if err != nil {
			panic(err)
		}
		fmt.Printf("learned BN: %d edges; step-%d error rate %.2f%% (was %.2f%%)\n",
			net.NumEdges(), incident.Step+1,
			100*cur.ErrorRate(incident.Step), 100*prev.ErrorRate(incident.Step))
		if len(alerts) == 0 {
			fmt.Println("no alerts")
		}
		for i, a := range alerts {
			if i >= 3 {
				break
			}
			cat := booking.Classify(world, a, []*booking.Incident{incident})
			fmt.Printf("  ALERT p=%.2e  %v  (%d/%d errored vs %d/%d last window) → classified: %s\n",
				a.PValue, a.Path.Names, a.CurCount, a.CurN, a.PrevCount, a.PrevN, cat)
		}
		fmt.Println()
	}
}
