package main

import (
	"context"
	"errors"
	"testing"

	least "repro"
	"repro/internal/gene"
	"repro/internal/randx"
)

// Regression for the leastvet ctxflow finding: the example's learns
// must route through the canonical LearnDataset entry point (not the
// deprecated Spec.Learn wrapper), so a cancelled context aborts within
// one inner iteration.
func TestExampleLearnsAreCancellable(t *testing.T) {
	sachs := gene.Sachs(randx.New(11).Split(), 200)
	spec, err := least.New(least.WithLambda(0.1), least.WithEpsilon(1e-3))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := spec.LearnDataset(ctx, least.FromMatrix(sachs.Samples, nil)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled learn returned %v, want context.Canceled", err)
	}

	res, err := spec.LearnDataset(context.Background(), least.FromMatrix(sachs.Samples, nil))
	if err != nil {
		t.Fatalf("learn failed: %v", err)
	}
	if res.Weights == nil {
		t.Fatal("learn returned no weights")
	}
}
