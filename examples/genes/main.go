// Gene-network example: the §VI-B application. Learns the Sachs
// protein-signalling network from synthetic expression data and
// compares LEAST with the NOTEARS baseline on the full Table III
// metric set, then runs LEAST alone on an E. coli-scale regulatory
// network where the baseline's O(d³) constraint is already painful.
package main

import (
	"context"
	"fmt"
	"time"

	"repro"
	"repro/internal/gene"
	"repro/internal/metrics"
	"repro/internal/randx"
)

func main() {
	ctx := context.Background()
	rng := randx.New(11)

	// --- Sachs (11 nodes, 17 consensus edges, n = 1000) -------------
	sachs := gene.Sachs(rng.Split(), 1000)
	fmt.Printf("Sachs: %d genes, %d true edges, %d samples\n",
		sachs.Truth.N(), sachs.Truth.NumEdges(), sachs.Samples.Rows())

	// One Spec per method, sharing the tuned knobs: the unified API
	// makes "same problem, different algorithm" a one-option change.
	lspec, err := least.New(
		least.WithLambda(0.1),
		least.WithEpsilon(1e-3),
		least.WithExactTermination(true),
	)
	if err != nil {
		panic(err)
	}
	nspec, err := least.New(
		least.WithMethod(least.MethodNOTEARS),
		least.WithLambda(0.1),
		least.WithEpsilon(1e-3),
	)
	if err != nil {
		panic(err)
	}

	t0 := time.Now()
	lres, err := lspec.LearnDataset(ctx, least.FromMatrix(sachs.Samples, nil))
	if err != nil {
		panic(err)
	}
	lTime := time.Since(t0)
	lAcc, _ := metrics.BestOverThresholds(sachs.Truth, lres.Weights, nil2grid())

	t0 = time.Now()
	nres, err := nspec.LearnDataset(ctx, least.FromMatrix(sachs.Samples, nil))
	if err != nil {
		panic(err)
	}
	nTime := time.Since(t0)
	nAcc, _ := metrics.BestOverThresholds(sachs.Truth, nres.Weights, nil2grid())

	fmt.Printf("%-8s %6s %4s %6s %6s %6s %6s %8s\n", "algo", "pred", "TP", "FDR", "TPR", "F1", "AUC", "time")
	fmt.Printf("%-8s %6d %4d %6.3f %6.3f %6.3f %6.3f %8v\n",
		"LEAST", lAcc.PredEdges, lAcc.TP, lAcc.FDR, lAcc.TPR, lAcc.F1, lAcc.AUC, lTime.Round(time.Millisecond))
	fmt.Printf("%-8s %6d %4d %6.3f %6.3f %6.3f %6.3f %8v\n\n",
		"NOTEARS", nAcc.PredEdges, nAcc.TP, nAcc.FDR, nAcc.TPR, nAcc.F1, nAcc.AUC, nTime.Round(time.Millisecond))

	// --- E. coli scale (reduced 10× for a quick demo) ---------------
	ecoli := gene.EColi(rng.Split(), 10)
	fmt.Printf("E.coli-scale network: %d genes, %d true edges, %d samples\n",
		ecoli.Truth.N(), ecoli.Truth.NumEdges(), ecoli.Samples.Rows())
	// The execution backend fans out across all cores by default; use
	// WithParallelism(1) for bit-exact serial runs, or sweep worker
	// counts with `leastbench -exp par-sweep`.
	espec, err := least.New(
		least.WithLambda(0.1),
		least.WithEpsilon(1e-3),
		least.WithBatchSize(512),
		least.WithParallelism(0),
	)
	if err != nil {
		panic(err)
	}
	t0 = time.Now()
	eres, err := espec.LearnDataset(ctx, least.FromMatrix(ecoli.Samples, nil))
	if err != nil {
		panic(err)
	}
	eAcc, tau := metrics.BestOverThresholds(ecoli.Truth, eres.Weights, nil2grid())
	fmt.Printf("LEAST: F1=%.3f TPR=%.3f FDR=%.3f SHD=%d (τ=%.1f) in %v\n",
		eAcc.F1, eAcc.TPR, eAcc.FDR, eAcc.SHD, tau, time.Since(t0).Round(time.Millisecond))
}

func nil2grid() []float64 { return []float64{0.1, 0.2, 0.3, 0.4, 0.5} }
