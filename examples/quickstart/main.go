// Quickstart: generate a random ground-truth DAG, sample a linear SEM
// from it, learn the structure back with LEAST, and score the result —
// the minimal end-to-end loop of the public API.
package main

import (
	"context"
	"fmt"

	"repro"
)

func main() {
	const (
		d    = 30 // variables
		n    = 10 * d
		seed = 7
	)
	// 1. Ground truth: an ER-2 DAG with ±U[0.5,2] edge weights.
	truth := least.GenerateDAG(seed, least.ErdosRenyi, d, 2)
	fmt.Printf("ground truth: %d nodes, %d edges\n", d, truth.G.NumEdges())

	// 2. Observations: n i.i.d. samples of the linear SEM.
	x := least.SampleLSEM(seed+1, truth, n, least.GaussianNoise)

	// 3. Learn through the unified Spec API: unset knobs resolve to the
	//    paper defaults; New validates everything up front.
	//    WithExactTermination reproduces the paper's §V-A stopping rule
	//    (check the exact NOTEARS h(W) each outer round), and
	//    WithParallelism caps the backend's worker fan-out (0 = all
	//    cores, 1 = serial); at this tiny d everything runs serially
	//    anyway, below the backend's work threshold. Swap
	//    WithMethod(least.MethodLEASTSP) in for the O(nnz) large-d
	//    mode, or MethodNOTEARS for the baseline.
	spec, err := least.New(
		least.WithLambda(0.2),
		least.WithEpsilon(1e-3),
		least.WithExactTermination(true),
		least.WithSeed(seed),
		least.WithParallelism(0),
	)
	if err != nil {
		panic(err)
	}
	//    Data enters as a Dataset; FromMatrix adapts the in-memory
	//    samples (streamed CSV/JSONL sources come in through
	//    least.OpenDataset and never materialize their rows).
	res, err := spec.LearnDataset(context.Background(), least.FromMatrix(x, nil))
	if err != nil {
		panic(err)
	}
	fmt.Printf("learned in %d outer / %d inner iterations (δ=%.2g, h=%.2g)\n",
		res.OuterIters, res.InnerIters, res.Delta, res.H)

	// 4. Score against the ground truth with the paper's τ grid.
	m, tau := least.EvaluateBest(truth.G, res.Weights, nil)
	fmt.Printf("best threshold τ=%.1f: F1=%.3f SHD=%d TPR=%.3f FDR=%.3f AUC=%.3f\n",
		tau, m.F1, m.SHD, m.TPR, m.FDR, m.AUCROC)

	// 5. The thresholded graph is a DAG by construction of the method.
	g := res.Graph(tau)
	fmt.Printf("recovered graph: %d edges, acyclic=%v\n", g.NumEdges(), g.IsDAG())
}
